"""Ablation — constrained optimization over the trade space (abstract claim).

Verifies the abstract's promise quantitatively: under tightening energy
budgets, the optimal configuration migrates from full precision toward
reduced precision and (where the budget allows) raised resolution — i.e.
precision is a tradable resource, not a fixed property of the code.
"""

from repro.harness.experiments import run_clamr_levels
from repro.harness.report import Table
from repro.tradespace import Constraint, TradeSpace, best_under_constraints, pareto_front


def build_space():
    runs = run_clamr_levels(nx=32, steps=80)
    profiles = {level: r.profile.scaled(100.0) for level, r in runs.items()}
    ts = TradeSpace(profiles, resolutions=(0.5, 1.0, 2.0, 4.0), convergence_order=1.0)
    ts.calibrate_accuracy(1e-2, at_resolution=1.0)
    return ts


def test_tradespace_budget_sweep(benchmark):
    ts = benchmark.pedantic(build_space, rounds=1, iterations=1)
    points = ts.enumerate()
    front = pareto_front(points)

    # the front must not be the trivial all-full column
    assert any(p.level in ("min", "mixed") for p in front)

    # budget sweep on one device: loosest budget -> best error; tighter
    # budgets force precision (and eventually resolution) down
    device_points = [p for p in points if p.device == "Haswell"]
    energies = sorted(p.energy_j for p in device_points)
    table = Table(
        title="Ablation — optimal configuration vs energy budget (Haswell)",
        headers=["Budget (J)", "Level", "Resolution", "Error"],
    )
    chosen_errors = []
    for budget in (energies[-1], energies[len(energies) // 2], energies[1]):
        best = best_under_constraints(
            device_points, objective="error", constraints=[Constraint("energy_j", budget)]
        )
        chosen_errors.append(best.error)
        table.add_row(budget, best.level, best.resolution, best.error)
    print()
    print(table.render())

    # tighter budgets can only cost accuracy
    assert chosen_errors[0] <= chosen_errors[1] <= chosen_errors[2]
    # and the tightest feasible budget lands on a reduced-precision point
    tight = best_under_constraints(
        device_points, objective="error", constraints=[Constraint("energy_j", energies[1])]
    )
    assert tight.level in ("min", "mixed")
