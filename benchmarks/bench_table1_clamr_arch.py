"""Table I — CLAMR runtime/memory per architecture and precision level.

Benchmarks the vectorized CLAMR step kernel (the measured quantity whose
profile the machine model lifts to the paper's 1920²/200-iteration
workload), then regenerates and checks Table I.
"""

import pytest

from benchmarks.conftest import CLAMR_NX, CLAMR_STEPS, emit
from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.harness.experiments import table1_clamr_architectures


def _run_min_precision():
    cfg = DamBreakConfig(nx=CLAMR_NX, ny=CLAMR_NX, max_level=2)
    return ClamrSimulation(cfg, policy="min").run(20)


def test_clamr_step_kernel(benchmark):
    """Wall-clock of the measured workload that feeds Table I."""
    result = benchmark.pedantic(_run_min_precision, rounds=3, iterations=1)
    assert result.steps == 20


def test_table1_shape(clamr_runs, benchmark):
    table = benchmark.pedantic(
        table1_clamr_architectures,
        kwargs=dict(results=clamr_runs, nx=CLAMR_NX, steps=CLAMR_STEPS),
        rounds=1,
        iterations=1,
    )
    emit(table)
    speedups = dict(zip(table.column("Arch"), table.column("Speedup (%)")))
    # paper shape: every architecture gains; TITAN X by far the most
    assert all(s > 0 for s in speedups.values())
    assert speedups["GTX TITAN X"] == max(speedups.values())
    assert speedups["GTX TITAN X"] > 200  # paper: 453%
    assert speedups["Haswell"] < 100  # paper: 19%
    # memory always shrinks at reduced precision
    for row in table.rows:
        assert row[1] <= row[3]
