"""Ablation — where does mixed precision spend its bits?

Compares three placements on the same dam-break problem against a full-
precision reference:

* ``min``    — float32 state AND float32 locals;
* ``mixed``  — float32 state, float64 locals (CLAMR's mixed build);
* ``mixed+`` — mixed with the §III-C promoted accumulators.

The paper's observation: mixed is "remarkably similar" to full while
costing the same memory as min.  The ablation shows each promotion buys
accuracy, and the state-array rounding is the irreducible floor.
"""

import numpy as np

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.harness.report import Table
from repro.precision.analysis import difference_metrics
from repro.precision.policy import MIN_PRECISION, MIXED_PRECISION, PrecisionPolicy

CFG = DamBreakConfig(nx=48, ny=48, max_level=2)
STEPS = 400


def run(policy: PrecisionPolicy):
    return ClamrSimulation(CFG, policy=policy).run(STEPS)


def test_mixed_precision_placement(benchmark):
    reference = run(PrecisionPolicy.from_level("full"))
    variants = {
        "min": MIN_PRECISION,
        "mixed": MIXED_PRECISION,
        "mixed+acc": MIXED_PRECISION.promoted_accumulators(),
    }
    table = Table(
        title="Ablation — precision placement vs full-precision reference",
        headers=["Variant", "max |ΔH|", "orders below solution", "state bytes/cell"],
    )
    metrics = {}
    for name, policy in variants.items():
        res = run(policy)
        d = difference_metrics(reference.slice_precise, res.slice_precise)
        metrics[name] = d
        table.add_row(name, d.max_abs, d.orders_below_solution, policy.state_bytes_per_value() * 3)
    print()
    print(table.render())

    benchmark.pedantic(lambda: run(MIXED_PRECISION), rounds=1, iterations=1)

    # mixed at least as close to full as min (same memory cost)
    assert metrics["mixed"].max_abs <= metrics["min"].max_abs * 1.5
    # everything stays far below the solution scale
    for d in metrics.values():
        assert d.within(4.0)
