"""Regression gate: full telemetry + flight recording stays near-free.

The observability story only holds if always-on instrumentation is
cheap enough to leave on: spans around every kernel, numerics
watchpoints at the default stride, and the flight recorder sampling the
per-timestep numerics time series (docs/flightrecorder.md).  This bench
times the whole developed-run kernel loop of a 128x128 level-2 dam
break twice — bare (``telemetry=None``, the null-object path) and fully
instrumented (spans + metrics + watchpoints at stride 8 + flight at
stride 4) — and fails when the best instrumented run costs more than
``--max-overhead`` (default 5%) over the best bare run.

Run directly (CI's flight-smoke job does)::

    python benchmarks/bench_telemetry_overhead.py --out BENCH_observatory.json

``--out`` *merges* into an existing repro-bench/v1 document: entries
whose names this bench owns are replaced, every other entry is kept —
so the observatory trajectory and this gate share one file.

Exit status: 1 when the overhead floor is breached, 0 otherwise.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.harness.report import Table

#: the measurement workload: the same developed AMR regime the kernel
#: benches use — large enough that per-step python costs are honest
BENCH_NX = 128
BENCH_MAX_LEVEL = 2
BENCH_STEPS = 96
#: instrumentation cadence under test (the defaults users get)
WATCH_STRIDE = 8
FLIGHT_STRIDE = 4


def _run_once(instrumented: bool) -> tuple[float, int]:
    """One full run; returns (kernel seconds, flight samples recorded)."""
    tel = None
    nsamples = 0
    if instrumented:
        from repro.telemetry import Telemetry
        from repro.telemetry.flight import FlightRecorder

        tel = Telemetry(
            label="bench/telemetry_overhead",
            watch_stride=WATCH_STRIDE,
            flight=FlightRecorder(stride=FLIGHT_STRIDE, label="bench"),
        )
    cfg = DamBreakConfig(nx=BENCH_NX, ny=BENCH_NX, max_level=BENCH_MAX_LEVEL)
    # collect *before* timing so the previous run's garbage (spans, mesh
    # arrays) is not billed to this variant's kernel loop
    gc.collect()
    result = ClamrSimulation(cfg, policy="mixed", telemetry=tel).run(BENCH_STEPS)
    if tel is not None:
        nsamples = tel.flight.nsamples
    return float(result.kernel_elapsed_s), nsamples


def _measure(reps: int) -> dict:
    """Best-of-reps kernel seconds, bare vs instrumented, interleaved.

    Interleaving (b, i, b, i, ...) instead of back-to-back blocks keeps
    slow thermal/allocator drift from biasing one side, and the min over
    reps is the standard noise-robust estimate: scheduler/GC spikes only
    ever *add* time, so the fastest rep is the closest to the true cost.
    """
    bare, inst = [], []
    nsamples = 0
    _run_once(instrumented=False)  # discarded warmup: caches, allocator
    for _ in range(reps):
        b, _ = _run_once(instrumented=False)
        i, nsamples = _run_once(instrumented=True)
        bare.append(b)
        inst.append(i)
    bare_s = float(np.min(bare))
    inst_s = float(np.min(inst))
    return {
        "bare_s": bare_s,
        "instrumented_s": inst_s,
        "overhead_frac": inst_s / bare_s - 1.0,
        "flight_samples": nsamples,
    }


_NAME_PREFIX = f"telemetry_overhead/nx{BENCH_NX}L{BENCH_MAX_LEVEL}"


def _bench_entries(m: dict, reps: int) -> list[dict]:
    """repro-bench/v1 entries for the merged observatory document."""
    ident = {
        "nx": BENCH_NX, "max_level": BENCH_MAX_LEVEL, "steps": BENCH_STEPS,
        "watch_stride": WATCH_STRIDE, "flight_stride": FLIGHT_STRIDE,
    }
    key = hashlib.sha256(json.dumps(ident, sort_keys=True).encode()).hexdigest()[:16]
    entries = []
    for metric, value, unit in (
        ("bare/kernel_ms", 1e3 * m["bare_s"], "ms"),
        ("instrumented/kernel_ms", 1e3 * m["instrumented_s"], "ms"),
        ("overhead_frac", m["overhead_frac"], "1"),
    ):
        entries.append(
            {
                "name": f"{_NAME_PREFIX}/{metric}",
                "value": float(value),
                "unit": unit,
                "samples": reps,
                "workload_key": key,
                "fingerprint": key,
            }
        )
    return entries


def _merge_out(path: str, entries: list[dict]) -> int:
    """Replace this bench's entries inside an existing bench document.

    Other producers' entries (the observatory export, the kernel bench)
    are preserved; the document is recreated if absent or unreadable.
    """
    from repro.ledger import validate_bench_document
    from repro.ledger.record import git_sha, machine_spec

    out = Path(path)
    kept: list[dict] = []
    if out.exists():
        try:
            kept = [
                e for e in json.loads(out.read_text())["entries"]
                if not str(e.get("name", "")).startswith(_NAME_PREFIX + "/")
            ]
        except (json.JSONDecodeError, KeyError, TypeError):
            kept = []
    doc = {
        "schema": "repro-bench/v1",
        "generated_unix": time.time(),
        "git_sha": git_sha(),
        "machine": machine_spec(),
        "entries": kept + entries,
    }
    validate_bench_document(doc)
    with out.open("w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(doc["entries"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="interleaved run pairs to take the best of (default 3)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="fail if instrumented/bare - 1 exceeds this "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="merge repro-bench/v1 entries into this document "
                             "(e.g. BENCH_observatory.json)")
    args = parser.parse_args(argv)

    m = _measure(args.reps)
    table = Table(
        title=(f"Telemetry + flight overhead — {BENCH_NX}^2 level-{BENCH_MAX_LEVEL} "
               f"dam break, {BENCH_STEPS} steps (best of {args.reps})"),
        headers=["Variant", "Kernel (ms)", "Overhead"],
    )
    table.add_row("bare (telemetry=None)", round(1e3 * m["bare_s"], 2), "-")
    table.add_row(
        f"instrumented (watch /{WATCH_STRIDE}, flight /{FLIGHT_STRIDE})",
        round(1e3 * m["instrumented_s"], 2),
        f"{100 * m['overhead_frac']:+.2f}%",
    )
    table.notes.append(
        f"{m['flight_samples']} flight samples per instrumented run; "
        f"gate: overhead < {100 * args.max_overhead:g}%"
    )
    print(table.render())

    if args.out:
        total = _merge_out(args.out, _bench_entries(m, args.reps))
        print(f"wrote {args.out}: {total} entries")

    if m["overhead_frac"] >= args.max_overhead:
        print(
            f"FAIL: telemetry overhead {100 * m['overhead_frac']:.2f}% >= "
            f"{100 * args.max_overhead:g}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
