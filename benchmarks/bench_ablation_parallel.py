"""Ablation — parallel-reduction reproducibility (paper §III-C).

Reproduces the cited result (Robey [23], Demmel-Nguyen [24]): "the typical
error in global sums can be reduced from about 7 digits of precision to 15
digits, within a few bits of perfect reproducibility."  We sum the mass of
a real CLAMR state across many simulated MPI decompositions and measure
how many digits survive per algorithm.
"""

import numpy as np

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.harness.report import Table
from repro.parallel import block_partition, morton_partition, stripe_partition
from repro.parallel.reduction import ALGORITHMS, reduction_spread


def mass_contributions():
    cfg = DamBreakConfig(nx=48, ny=48, max_level=2)
    sim = ClamrSimulation(cfg, policy="full")
    sim.run(120, record_mass=False)
    return sim.mesh, sim.state.H.astype(np.float64) * sim.mesh.cell_area()


def test_reduction_reproducibility_ladder(benchmark):
    mesh, values = benchmark.pedantic(mass_contributions, rounds=1, iterations=1)
    decompositions = [
        stripe_partition(values.size, 1),
        stripe_partition(values.size, 16),
        stripe_partition(values.size, 128),
        block_partition(mesh, 8),
        morton_partition(mesh, 32),
    ]
    table = Table(
        title="Ablation — digits stable across 5 MPI decompositions",
        headers=["Algorithm", "float64 digits", "bitwise reproducible"],
    )
    studies = {}
    for algo in ALGORITHMS:
        study = reduction_spread(values, decompositions, algorithm=algo)
        studies[algo] = study
        table.add_row(algo, study.digits_stable, study.reproducible)
    print()
    print(table.render())

    # the §III-C ladder: naive wobbles, compensated mostly holds,
    # binned is bitwise identical across every decomposition
    assert studies["binned"].reproducible
    assert studies["binned"].digits_stable == 17.0
    assert studies["naive"].digits_stable < 17.0
    assert studies["dd"].digits_stable >= 15.0
    assert studies["kahan"].digits_stable >= studies["naive"].digits_stable
    # the headline numbers: ~ "7 digits to 15 digits"
    assert studies["binned"].digits_stable - studies["naive"].digits_stable >= 2.0
