"""Ablation — does AMR change the precision-error story?

Runs the same dam break with and without refinement at min/full precision.
The cross-precision error should sit several orders below the solution in
both cases — i.e. the paper's fidelity claim is not an artifact of (or
broken by) the adaptive mesh — while AMR spends ~2-3x the cells of the
coarse uniform grid to resolve the front.
"""

import numpy as np

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.harness.report import Table
from repro.precision.analysis import difference_metrics

STEPS = 300


def pair(max_level: int):
    cfg = DamBreakConfig(nx=48, ny=48, max_level=max_level, start_refined=max_level > 0)
    full = ClamrSimulation(cfg, policy="full").run(STEPS)
    minimum = ClamrSimulation(cfg, policy="min").run(STEPS)
    return full, minimum


def test_amr_vs_uniform_precision_error(benchmark):
    table = Table(
        title="Ablation — precision error with and without AMR",
        headers=["Mesh", "cells (final)", "max |ΔH| min vs full", "orders below"],
    )
    results = {}
    for label, level in (("uniform", 0), ("AMR-2", 2)):
        full, minimum = pair(level)
        d = difference_metrics(full.slice_precise, minimum.slice_precise)
        results[label] = (full, d)
        table.add_row(label, full.ncells_history[-1], d.max_abs, d.orders_below_solution)
    print()
    print(table.render())

    benchmark.pedantic(lambda: pair(0), rounds=1, iterations=1)

    # the fidelity claim holds on both mesh types
    for _, d in results.values():
        assert d.within(4.0)
    # AMR actually refined (it buys resolution for the cells it spends)
    assert results["AMR-2"][0].ncells_history[-1] > results["uniform"][0].ncells_history[-1]
