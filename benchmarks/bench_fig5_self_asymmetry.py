"""Fig. 5 — asymmetry in the SELF perturbation density.

Paper: "for double precision, the asymmetry oscillates frequently about
the x-axis and assumes almost equal number of positive and negative
values with similar magnitude. However, for the single precision run, the
asymmetry is mostly [one-signed]."
"""

import numpy as np

from benchmarks.conftest import emit
from repro.harness.experiments import fig5_self_asymmetry
from repro.precision.analysis import asymmetry_signature


def test_fig5_shape(self_runs, benchmark):
    fig = benchmark.pedantic(
        fig5_self_asymmetry, kwargs=dict(results=self_runs), rounds=1, iterations=1
    )
    emit(fig)
    sig_s = asymmetry_signature(self_runs["single"].slice_precise)
    sig_d = asymmetry_signature(self_runs["double"].slice_precise)
    print(
        f"\n  single: max {sig_s.max_abs:.3e}, sign bias {sig_s.bias_fraction:.2f}"
        f"\n  double: max {sig_d.max_abs:.3e}, sign bias {sig_d.bias_fraction:.2f}"
    )
    # single-precision asymmetry is much larger...
    assert sig_s.max_abs > 10 * sig_d.max_abs
    # ...and biased to one sign, while double is balanced
    assert abs(sig_s.bias_fraction - 0.5) >= abs(sig_d.bias_fraction - 0.5)
    # double asymmetry is at the rounding floor relative to the anomaly
    assert sig_d.relative_max < 1e-8
