"""Ablation — drift and asymmetry growth curves (the dynamics behind Figs 1-2).

The paper shows snapshots; these curves show the trajectories: how the
min/mixed-vs-full divergence accumulates, whether the meshes stay in
lockstep, and how the asymmetry amplification builds step by step.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.harness.sweeps import asymmetry_growth, divergence_growth


def test_divergence_growth_curve(benchmark):
    samples = benchmark.pedantic(
        divergence_growth, kwargs=dict(nx=48, total_steps=400, chunk=50), rounds=1, iterations=1
    )
    emit(samples.figure("Drift of min/mixed vs full over the run", "max |ΔH|"))
    print(f"  meshes agree at each sample: {samples.meshes_agree}")
    # drift grows but stays tiny while meshes agree
    mins = samples.values["min"]
    assert mins[-1] >= mins[0]
    agree_mask = np.array(samples.meshes_agree)
    drift = np.array(mins)
    assert (drift[agree_mask] < 1e-4).all()


def test_asymmetry_growth_curve(benchmark):
    samples = benchmark.pedantic(
        asymmetry_growth, kwargs=dict(nx=48, total_steps=400, chunk=50), rounds=1, iterations=1
    )
    emit(samples.figure("Asymmetry accumulation per precision level", "max |asym|"))
    # the ordering holds at every sample where the meshes agree
    for k, agree in enumerate(samples.meshes_agree):
        if not agree:
            continue
        assert samples.values["full"][k] <= samples.values["min"][k] + 1e-15
    assert max(samples.values["full"]) < 1e-11
