"""Ablation — the §VIII teaser: formats below float32.

The paper's future work anticipates "new hardware with many more precision
choices."  This ablation runs the CLAMR dam break with the state arrays
*emulated* at half (binary16) and bfloat16 via the emulation ladder, and
measures where the fidelity story breaks down: fp16's 10-bit mantissa
pushes the cross-precision error within ~2-3 orders of the solution —
no longer "five to six orders below."
"""

import numpy as np

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.clamr.kernels import FaceLists, compute_timestep, finite_diff_vectorized
from repro.harness.report import Table
from repro.precision.analysis import difference_metrics
from repro.precision.emulation import quantize_to_bfloat16, quantize_to_half

CFG = DamBreakConfig(nx=32, ny=32, max_level=0, start_refined=False)
STEPS = 250


def run_emulated(quantizer=None):
    """Full-precision kernel with per-step state quantization (or none)."""
    sim = ClamrSimulation(CFG, policy="full")
    faces = FaceLists.from_mesh(sim.mesh)
    for _ in range(STEPS):
        dt = compute_timestep(sim.mesh, sim.state, CFG.courant)
        finite_diff_vectorized(sim.mesh, sim.state, dt, faces=faces)
        if quantizer is not None:
            sim.state.H[...] = quantizer(sim.state.H)
            sim.state.U[...] = quantizer(sim.state.U)
            sim.state.V[...] = quantizer(sim.state.V)
    field = sim.mesh.sample_to_uniform(sim.state.H.astype(np.float64))
    return field[:, field.shape[1] // 2]


def test_half_precision_ladder(benchmark):
    reference = run_emulated(None)
    ladder = {
        "float32 (min)": lambda a: np.asarray(a, dtype=np.float64).astype(np.float32).astype(np.float64),
        "bfloat16": quantize_to_bfloat16,
        "float16": quantize_to_half,
    }
    table = Table(
        title="Ablation — emulated storage formats below float64",
        headers=["Format", "max |ΔH|", "orders below solution"],
    )
    orders = {}
    for name, q in ladder.items():
        d = difference_metrics(reference, run_emulated(q))
        orders[name] = d.orders_below_solution
        table.add_row(name, d.max_abs, d.orders_below_solution)
    print()
    print(table.render())

    benchmark.pedantic(lambda: run_emulated(quantize_to_half), rounds=1, iterations=1)

    # fidelity orders by MANTISSA width, not storage width: for the O(1)
    # dam-break state, float16 (10 mantissa bits) beats bfloat16 (7 bits)
    # despite identical 2-byte storage — bf16's extra exponent range buys
    # nothing here.  A hardware menu needs both axes (paper §VIII).
    assert orders["float32 (min)"] > orders["float16"] > orders["bfloat16"]
    # float32 keeps the paper's margin; the 2-byte formats do not
    assert orders["float32 (min)"] > 4.0
    assert orders["float16"] < 4.0
    # but even fp16 remains *stable* (bounded, finite solution)
    assert np.isfinite(run_emulated(quantize_to_half)).all()
