"""Fig. 3 — Min-precision/high-resolution vs full-precision/low-resolution.

Paper: reinvest the performance saved by minimum precision into a finer
grid; at matched simulation time "the Min-HiRes solution has a more
detailed structure than the Full-LoRes one."
"""

import numpy as np

from benchmarks.conftest import emit
from repro.harness.experiments import fig3_precision_resolution


def test_fig3_shape(benchmark):
    fig = benchmark.pedantic(
        fig3_precision_resolution, kwargs=dict(nx_lo=32, steps_hint=300), rounds=1, iterations=1
    )
    emit(fig)
    lo = fig.get("full/32").y
    hi = fig.get("min/64").y
    # more detailed structure: higher total variation and sharper gradients
    tv_lo = float(np.abs(np.diff(lo)).sum())
    tv_hi = float(np.abs(np.diff(hi)).sum())
    print(f"\n  total variation: full-lores {tv_lo:.4f}, min-hires {tv_hi:.4f}")
    assert tv_hi > tv_lo
    assert float(np.abs(np.diff(hi)).max()) >= float(np.abs(np.diff(lo)).max()) * 0.8
    # the two runs describe the same physics: same mean height to ~1%
    assert np.mean(hi) == np.float64(np.mean(hi))
    assert abs(np.mean(hi) - np.mean(lo)) < 0.02 * abs(np.mean(lo))
