"""Fig. 4 — SELF density-anomaly slices, single vs double precision.

Paper: "the solutions for the two precision levels are visually
identical. The absolute difference (~O(1e-5)) ... is two orders of
magnitude less than the solution."
"""

import numpy as np

from benchmarks.conftest import emit
from repro.harness.experiments import fig4_self_slices
from repro.precision.analysis import difference_metrics


def test_fig4_shape(self_runs, benchmark):
    fig = benchmark.pedantic(
        fig4_self_slices, kwargs=dict(results=self_runs), rounds=1, iterations=1
    )
    emit(fig)
    d = difference_metrics(
        self_runs["double"].slice_precise, self_runs["single"].slice_precise
    )
    print(f"\n  |double-single| max {d.max_abs:.3e}, {d.orders_below_solution:.2f} orders below anomaly")
    # paper: about two orders of magnitude below the solution
    assert d.within(1.5)
    # and the anomaly itself is a real signal (not noise)
    assert d.solution_scale > 1e-4
