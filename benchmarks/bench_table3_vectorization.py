"""Table III — finite_diff vectorization × precision, and checkpoint sizes.

Benchmarks the genuinely-different scalar and NumPy kernels, regenerates
the table (measured Python wall-clock + modelled Haswell times + paper-
scale checkpoint sizes), and checks the paper's shape: vectorization
unlocks the single-precision gain (1.9x vectorized vs ~1.1x scalar), and
min/mixed checkpoints are 2/3 of full.

The compiled-backend cases extend the same ladder one rung further:
scalar -> NumPy -> cext/numba, each measured on the identical workload
(bit-identical by the backend contract, so the comparison is fair; see
benchmarks/bench_kernel_backends.py for the gated speedup floors).
"""

import pytest

from benchmarks.conftest import emit
from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.clamr import backends
from repro.harness.experiments import table3_vectorization

CFG = DamBreakConfig(nx=24, ny=24, max_level=1)

#: the oracle plus whatever compiled backends this machine can build
MEASURED_BACKENDS = ["numpy"] + [
    name for name, probe in (
        ("cext", backends.cext.availability),
        ("numba", backends.numba_backend.availability),
    ) if probe()[0]
]


def test_finite_diff_vectorized(benchmark):
    sim = ClamrSimulation(CFG, policy="min", vectorized=True)
    benchmark.pedantic(sim.run, args=(10,), rounds=3, iterations=1)


def test_finite_diff_scalar(benchmark):
    sim = ClamrSimulation(CFG, policy="min", vectorized=False)
    benchmark.pedantic(sim.run, args=(10,), rounds=1, iterations=1)


@pytest.mark.parametrize("backend", MEASURED_BACKENDS)
def test_finite_diff_backend(benchmark, backend):
    with backends.kernel_backend(backend):
        backends.warmup(ClamrSimulation(CFG, policy="min").policy.compute_dtype)
        sim = ClamrSimulation(CFG, policy="min", vectorized=True)
        benchmark.pedantic(sim.run, args=(10,), rounds=3, iterations=1)


@pytest.mark.parametrize("backend", MEASURED_BACKENDS)
def test_muscl_backend(benchmark, backend):
    with backends.kernel_backend(backend):
        backends.warmup(ClamrSimulation(CFG, policy="min").policy.compute_dtype)
        sim = ClamrSimulation(CFG, policy="min", vectorized=True, scheme="muscl")
        benchmark.pedantic(sim.run, args=(10,), rounds=3, iterations=1)


def test_table3_shape(benchmark):
    table = benchmark.pedantic(
        table3_vectorization, kwargs=dict(nx=24, steps=60), rounds=1, iterations=1
    )
    emit(table)
    _, v_min, v_mixed, v_full = table.row_by_label("modelled Haswell vectorized (s)")
    _, u_min, u_mixed, u_full = table.row_by_label("modelled Haswell unvectorized (s)")
    # vectorized: large single-precision gain (paper: 9.2/4.8 = 1.9x)
    assert 1.3 < v_full / v_min < 2.5
    # unvectorized: small gain (paper: 12.7/11.4 = 1.1x)
    assert u_full / u_min < 1.35
    # vectorization itself is the big lever at every precision
    assert u_min / v_min > 1.5
    # checkpoint ratio is exactly the layout ratio
    _, c_min, c_mixed, c_full = table.row_by_label("checkpoint size (MB)")
    assert c_min / c_full == pytest.approx(2 / 3, abs=0.01)
    assert c_min == c_mixed
