"""Ablation — TDP × runtime (the paper's estimator) vs bottom-up energy.

The paper prices energy as nominal power × runtime (Tables II/VI).  One
might object that this credits reduced precision only through saved time,
missing the halved per-op and per-byte energies.  Pricing each operation
and byte (Horowitz-style, ``repro.machine.opcost``) shows the objection
is *quantitatively minor for these workloads*: at CLAMR's arithmetic
intensity the budget is dominated by static/leakage power integrated over
the runtime (hundreds of joules) while the dynamic op/traffic energy is
single-digit joules, so both estimators give min:full ratios within ~4%
of the runtime ratio.  The paper's simple estimate is therefore a sound
proxy here — and the margin the bench reports is the quantitative license
for it.
"""

from benchmarks.conftest import CLAMR_NX, CLAMR_STEPS
from repro.harness.experiments import _lift_clamr_profile
from repro.harness.report import Table
from repro.machine.energy import estimate_energy
from repro.machine.opcost import estimate_energy_bottomup
from repro.machine.roofline import RooflineModel
from repro.machine.specs import CLAMR_DEVICE_ORDER, device


def test_energy_estimator_comparison(clamr_runs, benchmark):
    table = Table(
        title="Ablation — energy estimators: TDP×time vs bottom-up (min:full ratio)",
        headers=["Arch", "runtime ratio", "TDP×time ratio", "bottom-up ratio", "dynamic share (full)"],
    )
    for key in CLAMR_DEVICE_ORDER:
        dev = device(key)
        model = RooflineModel(device=dev)
        data = {}
        for level in ("min", "full"):
            prof = _lift_clamr_profile(clamr_runs[level].profile, CLAMR_NX, CLAMR_STEPS)
            runtime = model.predict(prof).runtime_s
            bottom_up = estimate_energy_bottomup(prof, dev, runtime).energy_joules
            static = dev.tdp_watts * 0.30 * runtime
            data[level] = (
                runtime,
                estimate_energy(dev, runtime).energy_joules,
                bottom_up,
                1.0 - static / bottom_up,
            )
        rt_ratio = data["min"][0] / data["full"][0]
        tdp_ratio = data["min"][1] / data["full"][1]
        bu_ratio = data["min"][2] / data["full"][2]
        table.add_row(dev.name, rt_ratio, tdp_ratio, bu_ratio, data["full"][3])

    print()
    print(table.render())

    benchmark.pedantic(
        lambda: estimate_energy_bottomup(
            _lift_clamr_profile(clamr_runs["min"].profile, CLAMR_NX, CLAMR_STEPS),
            device("haswell"),
            1.0,
        ),
        rounds=5,
        iterations=1,
    )

    import pytest

    for row in table.rows:
        _, rt_ratio, tdp_ratio, bu_ratio, dyn_share = row
        # TDP×time tracks the runtime ratio (identically up to the one-ulp
        # difference of dividing E vs t)
        assert tdp_ratio == pytest.approx(rt_ratio, rel=1e-12)
        # the bottom-up correction is small: within a few % of TDP×time
        assert abs(bu_ratio - tdp_ratio) < 0.05
        # because the dynamic share of the budget is small at this intensity
        assert dyn_share < 0.25
