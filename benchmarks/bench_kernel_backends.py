"""Microbenchmark + regression gate for the compiled kernel backends.

Times the whole hot kernels — :func:`finite_diff_vectorized` (first-order
Rusanov), :func:`finite_diff_muscl` (second-order MUSCL-Hancock), and the
CFL reduction :func:`compute_timestep` — under each available compiled
backend (``cext``, ``numba``) against the NumPy oracle on a developed
128x128 level-2 dam break, per precision level, after first *proving*
the backend produces bit-identical state over several steps (the
property that makes the backend admissible at all; see
``tests/test_backends.py`` for the exhaustive version).

What to expect, and what is gated:

* **muscl** — the production second-order scheme fuses slopes, limiter,
  predictor, and per-face flux into one pass over the mesh; the oracle
  spends ~20 NumPy traversals on the same work.  This is the headline
  number: the gate requires >= 3x by default.
* **fd** — the first-order kernel is mostly gather + one flux; NumPy is
  already fused and vectorized there, so compiled wins are modest
  (~1.5-3x).  Gated at a conservative floor.
* **cfl** — one map + min-reduction; NumPy is near the memory-bandwidth
  roof, so the compiled path is roughly parity.  Reported, not gated.

Run directly (CI's perf-smoke job does)::

    python benchmarks/bench_kernel_backends.py --merge BENCH_kernels.json

Exit status: 1 when bit-identity fails, a requested backend is missing,
or a speedup floor is missed; 0 otherwise.  ``--merge`` rewrites only
the ``kernel_backends/`` entries of an existing repro-bench/v1 document,
leaving other benchmarks' entries intact.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time

import numpy as np

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.clamr import backends
from repro.clamr.kernels import FaceLists, compute_timestep, finite_diff_vectorized
from repro.clamr.muscl import finite_diff_muscl
from repro.harness.report import Table

LEVELS = ("min", "mixed", "full")

#: the measurement workload: same developed dam break the scatter
#: benchmark uses, so the two families of numbers are comparable
BENCH_NX = 128
BENCH_MAX_LEVEL = 2
BENCH_WARMUP_STEPS = 12
#: bit-identity is checked over this many further steps per kernel
IDENTITY_STEPS = 8

KERNELS = ("fd", "muscl", "cfl")


def _prepare(level: str):
    """A developed simulation snapshot: mesh, state, faces, dt."""
    cfg = DamBreakConfig(nx=BENCH_NX, ny=BENCH_NX, max_level=BENCH_MAX_LEVEL)
    sim = ClamrSimulation(cfg, policy=level)
    sim.run(BENCH_WARMUP_STEPS)
    faces = FaceLists.from_mesh(sim.mesh)
    dt = compute_timestep(sim.mesh, sim.state, cfg.courant)
    return sim.mesh, sim.state, faces, dt


def _step_fn(kernel: str):
    if kernel == "fd":
        return lambda mesh, s, dt, faces: finite_diff_vectorized(mesh, s, dt, faces=faces)
    if kernel == "muscl":
        return lambda mesh, s, dt, faces: finite_diff_muscl(mesh, s, dt, faces=faces)
    return lambda mesh, s, dt, faces: compute_timestep(mesh, s, 0.25)


def _check_identity(mesh, state, faces, backend: str) -> bool:
    """Backend vs oracle over IDENTITY_STEPS of fd + muscl: same bits?"""
    runs = {}
    for name in (backend, "numpy"):
        s = state.copy()
        dts = []
        with backends.kernel_backend(name):
            for _ in range(IDENTITY_STEPS):
                step_dt = compute_timestep(mesh, s, 0.25)
                dts.append(step_dt)
                finite_diff_vectorized(mesh, s, step_dt, faces=faces)
                finite_diff_muscl(mesh, s, step_dt, faces=faces)
        runs[name] = (s, dts)
    (a, adts), (b, bdts) = runs[backend], runs["numpy"]
    return (
        adts == bdts
        and np.array_equal(a.H, b.H, equal_nan=True)
        and np.array_equal(a.U, b.U, equal_nan=True)
        and np.array_equal(a.V, b.V, equal_nan=True)
    )


def _time_kernel(mesh, state, faces, dt, kernel: str, backend: str, reps: int) -> float:
    """Median seconds per whole-kernel call under a backend.

    The state evolves across reps, but the backends are bit-identical,
    so each backend times the *same* sequence of states.
    """
    step = _step_fn(kernel)
    s = state.copy()
    with backends.kernel_backend(backend):
        backends.warmup(state.policy.compute_dtype)  # JIT / C build outside timing
        step(mesh, s, dt, faces)  # warm caches and dispatch
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            step(mesh, s, dt, faces)
            times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _bench_entries(rows, reps: int) -> list[dict]:
    """repro-bench/v1 entries from the per-(level, backend) rows."""
    shape = {"nx": BENCH_NX, "max_level": BENCH_MAX_LEVEL, "warmup": BENCH_WARMUP_STEPS}
    entries = []
    for row in rows:
        ident = dict(shape, level=row["level"], backend=row["backend"])
        key = hashlib.sha256(json.dumps(ident, sort_keys=True).encode()).hexdigest()[:16]
        prefix = (f"kernel_backends/nx{BENCH_NX}L{BENCH_MAX_LEVEL}/"
                  f"{row['level']}/{row['backend']}")
        for kernel in KERNELS:
            for metric, value, unit in (
                (f"{kernel}/oracle_ms", 1e3 * row[f"{kernel}_oracle_s"], "ms"),
                (f"{kernel}/compiled_ms", 1e3 * row[f"{kernel}_compiled_s"], "ms"),
                (f"{kernel}/speedup", row[f"{kernel}_speedup"], "1"),
            ):
                entries.append(
                    {
                        "name": f"{prefix}/{metric}",
                        "value": float(value),
                        "unit": unit,
                        "samples": reps,
                        "workload_key": key,
                        "fingerprint": key,
                    }
                )
    return entries


def _write_doc(entries: list[dict], out: str, merge: bool) -> None:
    from repro.ledger import validate_bench_document
    from repro.ledger.record import git_sha, machine_spec

    doc = {
        "schema": "repro-bench/v1",
        "generated_unix": time.time(),
        "git_sha": git_sha(),
        "machine": machine_spec(),
        "entries": entries,
    }
    if merge:
        try:
            with open(out, encoding="utf-8") as fh:
                existing = json.load(fh)
        except (OSError, json.JSONDecodeError):
            existing = None
        if existing is not None:
            kept = [e for e in existing.get("entries", [])
                    if not e["name"].startswith("kernel_backends/")]
            doc["entries"] = kept + entries
    validate_bench_document(doc)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}: {len(doc['entries'])} entries")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backends", default=None, metavar="A,B",
                        help="comma-separated backends to measure (default: "
                             "every available compiled backend); naming an "
                             "unavailable one fails")
    parser.add_argument("--reps", type=int, default=30,
                        help="timed repetitions per measurement (default 30)")
    parser.add_argument("--min-muscl-speedup", type=float, default=3.0,
                        help="fail below this whole-kernel MUSCL speedup "
                             "(default 3.0 — the headline gate)")
    parser.add_argument("--min-fd-speedup", type=float, default=1.3,
                        help="fail below this whole-kernel Rusanov speedup "
                             "(default 1.3; the fd kernel is gather-bound)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write a validated repro-bench/v1 document here")
    parser.add_argument("--merge", default=None, metavar="FILE",
                        help="like --out, but keep the file's non-"
                             "kernel_backends entries (BENCH_kernels.json)")
    args = parser.parse_args(argv)

    if args.backends:
        requested = [b.strip() for b in args.backends.split(",") if b.strip()]
    else:
        requested = None

    available = {r["name"]: r for r in backends.available_backends()}
    names = requested or [n for n in ("cext", "numba") if available[n]["available"]]
    failures = []
    for name in names:
        if name not in available or name in ("numpy", "auto"):
            print(f"FAIL: not a measurable backend: {name!r}", file=sys.stderr)
            return 1
        if not available[name]["available"]:
            failures.append(f"{name}: unavailable ({available[name]['detail']})")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if not names:
        print("no compiled backend available (no C compiler, no numba); "
              "nothing to measure")
        return 0

    rows = []
    table = Table(
        title=(f"Compiled backends vs NumPy oracle — {BENCH_NX}^2 "
               f"level-{BENCH_MAX_LEVEL} dam break after {BENCH_WARMUP_STEPS} "
               f"steps (median of {args.reps})"),
        headers=["Level", "Backend", "Bits", "fd x", "muscl x", "cfl x",
                 "muscl oracle (ms)", "muscl compiled (ms)"],
    )
    for level in LEVELS:
        mesh, state, faces, dt = _prepare(level)
        for backend in names:
            identical = _check_identity(mesh, state, faces, backend)
            if not identical:
                failures.append(
                    f"{level}/{backend}: state diverged from the oracle "
                    f"(bit-identity broken)"
                )
            row = {"level": level, "backend": backend}
            for kernel in KERNELS:
                oracle = _time_kernel(mesh, state, faces, dt, kernel, "numpy", args.reps)
                compiled = _time_kernel(mesh, state, faces, dt, kernel, backend, args.reps)
                row[f"{kernel}_oracle_s"] = oracle
                row[f"{kernel}_compiled_s"] = compiled
                row[f"{kernel}_speedup"] = oracle / compiled
            rows.append(row)
            table.add_row(
                level, backend, "identical" if identical else "DIVERGED",
                round(row["fd_speedup"], 2),
                round(row["muscl_speedup"], 2),
                round(row["cfl_speedup"], 2),
                round(1e3 * row["muscl_oracle_s"], 3),
                round(1e3 * row["muscl_compiled_s"], 3),
            )
            if row["muscl_speedup"] < args.min_muscl_speedup:
                failures.append(
                    f"{level}/{backend}: muscl speedup {row['muscl_speedup']:.2f}x "
                    f"< floor {args.min_muscl_speedup}x"
                )
            if row["fd_speedup"] < args.min_fd_speedup:
                failures.append(
                    f"{level}/{backend}: fd speedup {row['fd_speedup']:.2f}x "
                    f"< floor {args.min_fd_speedup}x"
                )
    print(table.render())

    entries = _bench_entries(rows, args.reps)
    if args.merge:
        _write_doc(entries, args.merge, merge=True)
    elif args.out:
        _write_doc(entries, args.out, merge=False)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
