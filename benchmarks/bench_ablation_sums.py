"""Ablation — global-sum algorithms at each precision (paper §III-C).

Quantifies the claim that global sums are "the most sensitive parts of
numerical calculations": naive float32 summation of a CLAMR-sized mass
reduction loses many digits, Kahan/pairwise recover most, double-double
and the binned reproducible sum recover all (the cited 7 → 15 digits).
"""

import math

import numpy as np
import pytest

from repro.harness.report import Table
from repro.sums import dd_sum, kahan_sum, naive_sum, neumaier_sum, pairwise_sum, reproducible_sum


def mass_like_values(n=200_000, seed=0):
    """Per-cell mass contributions with AMR-like 3-decade dynamic range."""
    rng = np.random.default_rng(seed)
    levels = rng.integers(0, 3, size=n)
    area = 0.25**levels
    h = 1.0 + 0.5 * rng.random(n)
    return (h * area).astype(np.float64)


def digits(approx: float, exact: float) -> float:
    if approx == exact:
        return 17.0
    return min(17.0, -math.log10(abs(approx - exact) / abs(exact)))


def test_sum_ladder_accuracy(benchmark):
    x = mass_like_values()
    exact = math.fsum(x.tolist())

    table = Table(
        title="Ablation — digits of accuracy per summation algorithm",
        headers=["Algorithm", "float32 digits", "float64 digits"],
    )
    algos = {
        "naive": naive_sum,
        "kahan": kahan_sum,
        "neumaier": neumaier_sum,
        "pairwise": pairwise_sum,
    }
    results = {}
    for name, fn in algos.items():
        d32 = digits(fn(x.astype(np.float32)), exact)
        d64 = digits(fn(x), exact)
        results[name] = (d32, d64)
        table.add_row(name, d32, d64)
    dd_digits = digits(float(dd_sum(x)), exact)
    repro_digits = digits(reproducible_sum(x), exact)
    table.add_row("double-double", float("nan"), dd_digits)
    table.add_row("reproducible (binned)", float("nan"), repro_digits)
    print()
    print(table.render())

    benchmark.pedantic(lambda: pairwise_sum(x), rounds=3, iterations=1)

    # the §III-C story: naive f64 ~ half the digits of the compensated sums
    assert results["naive"][1] < dd_digits
    assert results["kahan"][1] >= results["naive"][1]
    assert results["pairwise"][1] >= results["naive"][1]
    assert dd_digits >= 15.0 and repro_digits >= 15.0
    # float32 naive summation of 200k values is catastrophically bad
    assert results["naive"][0] < 6.0
    # compensation rescues float32 accumulation
    assert results["kahan"][0] > results["naive"][0] + 1.0


def test_promoted_accumulator_enables_reduced_state(benchmark):
    """§III-C's co-design move: float32 data + float64 accumulator ≈ float64 data."""
    x = mass_like_values()
    exact = math.fsum(x.tolist())
    # float32 state, float64 accumulator (the promoted-accumulator policy)
    promoted = float(np.sum(x.astype(np.float32), dtype=np.float64))
    # float32 state, float32 accumulator (naive reduced precision)
    demoted = naive_sum(x.astype(np.float32))
    benchmark.pedantic(lambda: np.sum(x.astype(np.float32), dtype=np.float64), rounds=3, iterations=1)
    assert digits(promoted, exact) > digits(demoted, exact) + 1.0
    # the remaining error is the f32 *representation* of the data, not the
    # accumulation; per-value rounding is ~1e-7 relative and partially
    # cancels across 200k values, so 7-12 digits survive
    assert 6.0 <= digits(promoted, exact) <= 13.0
