"""Tests for SELF state I/O."""

import numpy as np
import pytest

from repro.self_ import SelfSimulation, ThermalBubbleConfig
from repro.self_.checkpoint import read_state, state_nbytes, write_anomaly, write_state
from repro.self_.mesh import HexMesh


def small_run(precision="double"):
    cfg = ThermalBubbleConfig(nex=2, ney=2, nez=2, order=2)
    sim = SelfSimulation(cfg, precision=precision)
    sim.run(3)
    return sim


class TestStateRoundtrip:
    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_bitwise_roundtrip(self, tmp_path, precision):
        sim = small_run(precision)
        path = tmp_path / "state.self"
        nbytes = write_state(path, sim.mesh, sim.U)
        assert nbytes == state_nbytes(sim.mesh, sim.U.dtype.itemsize)
        mesh2, U2 = read_state(path)
        assert mesh2.nelem == sim.mesh.nelem
        assert mesh2.lengths == sim.mesh.lengths
        assert U2.dtype == sim.U.dtype
        np.testing.assert_array_equal(U2, sim.U)

    def test_size_halves_at_single(self):
        mesh = HexMesh(nex=3, ney=3, nez=3, lengths=(1, 1, 1), order=4)
        full = state_nbytes(mesh, 8)
        single = state_nbytes(mesh, 4)
        header = full - 5 * mesh.ndof * 8
        assert (full - header) == 2 * (single - header)

    def test_shape_mismatch_rejected(self, tmp_path):
        sim = small_run()
        with pytest.raises(ValueError, match="shape"):
            write_state(tmp_path / "x.self", sim.mesh, sim.U[:, :4])

    def test_bad_dtype_rejected(self, tmp_path):
        sim = small_run()
        with pytest.raises(ValueError, match="dtype"):
            write_state(tmp_path / "x.self", sim.mesh, sim.U.astype(np.float16))

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.self"
        p.write_bytes(b"NOPE" + b"\x00" * 100)
        with pytest.raises(ValueError, match="magic"):
            read_state(p)

    def test_truncated(self, tmp_path):
        sim = small_run()
        p = tmp_path / "t.self"
        write_state(p, sim.mesh, sim.U)
        p.write_bytes(p.read_bytes()[:-4])
        with pytest.raises(ValueError, match="size"):
            read_state(p)

    def test_payload_corruption_detected(self, tmp_path):
        sim = small_run()
        p = tmp_path / "c.self"
        write_state(p, sim.mesh, sim.U)
        raw = bytearray(p.read_bytes())
        raw[-1] ^= 0x01  # single bit flip in the last payload byte
        p.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="content hash"):
            read_state(p)


class TestAnomalyOutput:
    def test_size_is_precision_blind(self, tmp_path):
        single = small_run("single")
        double = small_run("double")
        a = write_anomaly(tmp_path / "s.anm", single.U[:, 0] - single.solver.rho_bar)
        b = write_anomaly(tmp_path / "d.anm", double.U[:, 0] - double.solver.rho_bar)
        assert a == b  # the Table VII SELF-storage argument, in bytes

    def test_header_records_shape(self, tmp_path):
        import struct

        field = np.zeros((2, 3, 4), dtype=np.float64)
        path = tmp_path / "x.anm"
        write_anomaly(path, field)
        raw = path.read_bytes()
        assert raw[:4] == b"SANM"
        ndim = struct.unpack_from("<I", raw, 4)[0]
        assert ndim == 3
        assert struct.unpack_from("<3I", raw, 8) == (2, 3, 4)


class TestAtomicity:
    def test_interrupted_write_leaves_old_file_intact(self, tmp_path, monkeypatch):
        import os

        sim = small_run("single")
        path = tmp_path / "state.self"
        write_state(path, sim.mesh, sim.U)
        good = path.read_bytes()

        def boom(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            write_state(path, sim.mesh, sim.U * 2)
        assert path.read_bytes() == good
        assert [p.name for p in tmp_path.iterdir()] == ["state.self"]

    def test_anomaly_write_is_atomic_too(self, tmp_path, monkeypatch):
        import os

        anomaly = np.linspace(0, 1, 8).reshape(2, 4)
        path = tmp_path / "anom.bin"
        write_anomaly(path, anomaly)
        good = path.read_bytes()
        monkeypatch.setattr(os, "replace",
                            lambda s, d: (_ for _ in ()).throw(OSError("crash")))
        with pytest.raises(OSError):
            write_anomaly(path, anomaly * 3)
        assert path.read_bytes() == good
