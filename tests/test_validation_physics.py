"""Physics validation against analytic theory.

These tests check that the mini-apps simulate the right *physics*, not
just stable numerics: the shallow-water gravity-wave dispersion relation
for CLAMR, and Archimedean buoyancy for the SELF thermal bubble.  Getting
these right is a precondition for the paper's fidelity comparisons to
mean anything.
"""

import numpy as np
import pytest

from repro.clamr.kernels import FaceLists, compute_timestep, finite_diff_vectorized
from repro.clamr.mesh import AmrMesh
from repro.clamr.state import GRAVITY, ShallowWaterState
from repro.precision.policy import FULL_PRECISION
from repro.self_ import SelfSimulation, ThermalBubbleConfig


class TestShallowWaterDispersion:
    """A small-amplitude standing wave must oscillate at ω = k·sqrt(g·H0)."""

    def _measure_period(self, nx: int = 32, amplitude: float = 1e-3) -> float:
        mesh = AmrMesh.uniform(nx, 4, coarse_size=1.0 / nx)
        x, _ = mesh.cell_centers()
        H0 = 1.0
        # cos(pi x / L): zero-slope at both walls, the gravest standing mode
        H = H0 + amplitude * np.cos(np.pi * x)
        state = ShallowWaterState(
            H=H, U=np.zeros_like(H), V=np.zeros_like(H), policy=FULL_PRECISION
        )
        faces = FaceLists.from_mesh(mesh)
        probe = int(np.argmin(x))  # leftmost cell: an antinode
        t = 0.0
        crossings = []
        prev = float(state.H[probe] - H0)
        # run long enough for ~3 half-periods of the analytic wave
        T_analytic = 2.0 / np.sqrt(GRAVITY * H0)
        while t < 1.7 * T_analytic:
            dt = compute_timestep(mesh, state, 0.2)
            finite_diff_vectorized(mesh, state, dt, faces=faces)
            t += dt
            cur = float(state.H[probe] - H0)
            if prev > 0.0 >= cur or prev < 0.0 <= cur:
                crossings.append(t)
            prev = cur
        assert len(crossings) >= 2, "wave did not oscillate"
        # consecutive zero crossings are half a period apart
        half_periods = np.diff(crossings)
        return 2.0 * float(np.mean(half_periods))

    def test_standing_wave_period(self):
        measured = self._measure_period()
        analytic = 2.0 / np.sqrt(GRAVITY * 1.0)  # T = 2L / sqrt(g H0), L = 1
        assert measured == pytest.approx(analytic, rel=0.05)

    def test_amplitude_decays_not_grows(self):
        """First-order Rusanov must damp the wave, never amplify it."""
        mesh = AmrMesh.uniform(32, 4, coarse_size=1 / 32)
        x, _ = mesh.cell_centers()
        H = 1.0 + 1e-3 * np.cos(np.pi * x)
        state = ShallowWaterState(
            H=H, U=np.zeros_like(H), V=np.zeros_like(H), policy=FULL_PRECISION
        )
        faces = FaceLists.from_mesh(mesh)
        t = 0.0
        T = 2.0 / np.sqrt(GRAVITY)
        while t < T:  # one full period: amplitude comparable phase
            dt = compute_timestep(mesh, state, 0.2)
            finite_diff_vectorized(mesh, state, dt, faces=faces)
            t += dt
        assert float(np.abs(state.H - 1.0).max()) <= 1.05e-3


class TestBubbleBuoyancy:
    """The warm blob's initial ascent must match reduced gravity
    g' = g Δθ/θ0 (Archimedes, Boussinesq limit)."""

    def test_initial_acceleration(self):
        amplitude = 0.5
        cfg = ThermalBubbleConfig(
            nex=4, ney=4, nez=4, order=4, bubble_amplitude=amplitude
        )
        sim = SelfSimulation(cfg, precision="double")
        target_t = 1.0  # seconds of ascent
        while sim.time < target_t:
            res = sim.run(10)
        w_max = res.max_vertical_velocity
        g_reduced = 9.81 * amplitude / cfg.theta0
        expected = g_reduced * sim.time
        # drag, pressure adjustment and profile smoothing slow the peak;
        # same order of magnitude and below the free-rise bound
        assert 0.3 * expected < w_max <= 1.1 * expected

    def test_acceleration_scales_with_amplitude(self):
        results = {}
        for amplitude in (0.25, 1.0):
            cfg = ThermalBubbleConfig(
                nex=3, ney=3, nez=3, order=3, bubble_amplitude=amplitude
            )
            sim = SelfSimulation(cfg, precision="double")
            while sim.time < 0.8:
                res = sim.run(10)
            results[amplitude] = res.max_vertical_velocity / sim.time
        ratio = results[1.0] / results[0.25]
        assert ratio == pytest.approx(4.0, rel=0.35)

    def test_cold_bubble_sinks(self):
        cfg = ThermalBubbleConfig(nex=3, ney=3, nez=3, order=3, bubble_amplitude=0.5)
        sim = SelfSimulation(cfg, precision="double")
        # flip the anomaly: colder-than-background = denser = sinks.
        # rebuild the initial state with a negative amplitude by mirroring
        # the density anomaly about the background.
        rho_bar = sim.solver.rho_bar
        anomaly = sim.U[:, 0] - rho_bar
        sim.U[:, 0] = rho_bar - anomaly  # now heavier where it was lighter
        sim.run(40)
        w = sim.U[:, 3] / sim.U[:, 0]
        assert w.min() < 0.0
        assert abs(w.min()) > abs(w.max()) * 0.5  # dominated by sinking


class TestAcousticTimescale:
    """SELF's acoustic CFL: the stable dt must track the sound-crossing
    time of a collocation interval — the dispersion-level check that the
    wave speeds inside the DG solver are physical."""

    def test_stable_dt_matches_sound_speed(self):
        cfg = ThermalBubbleConfig(nex=4, ney=4, nez=4, order=4)
        sim = SelfSimulation(cfg, precision="double")
        dt = sim.solver.stable_dt(sim.U, courant=0.3)
        # c = sqrt(gamma R T); T ~ theta0 * exner near the surface ~ 290-300K
        c = np.sqrt(1.4 * 287.0 * 295.0)
        dx_elem = 1000.0 / 4
        expected = 0.3 * 2.0 / ((2 * 4 + 1) * 3 * (2.0 / dx_elem) * c)
        assert dt == pytest.approx(expected, rel=0.1)

    def test_pressure_pulse_travels_at_sound_speed(self):
        """Drop a small pressure bump at the center; after t, the wave
        front sits ~c·t from the origin."""
        cfg = ThermalBubbleConfig(
            nex=6, ney=2, nez=2, lengths=(3000.0, 500.0, 500.0), order=4,
            bubble_amplitude=1e-6,  # effectively no thermal bubble
        )
        sim = SelfSimulation(cfg, precision="double")
        # add a pressure/density pulse at the domain center (x only)
        x, _, _ = sim.mesh.node_coordinates()
        pulse = 1e-4 * np.exp(-((x - 1500.0) / 100.0) ** 2)
        sim.U[:, 0] += (sim.solver.rho_bar * pulse).astype(sim.U.dtype)
        sim.U[:, 4] += (sim.solver.p_bar * pulse / 0.4).astype(sim.U.dtype)
        target_t = 2.0
        while sim.time < target_t:
            sim.run(10)
        # locate the rightmost |anomaly| front along the center line
        anomaly = np.abs(sim.U[:, 0].astype(np.float64) - sim.solver.rho_bar)
        field = sim._assemble_uniform(anomaly)
        line = field[:, field.shape[1] // 2, field.shape[2] // 2]
        xs = np.linspace(0.0, 3000.0, line.size)
        threshold = 0.2 * line.max()
        front = xs[np.flatnonzero(line > threshold)[-1]]
        c = np.sqrt(1.4 * 287.0 * 295.0)  # ~344 m/s
        expected_front = 1500.0 + c * sim.time
        assert front == pytest.approx(min(expected_front, 3000.0), rel=0.15)
