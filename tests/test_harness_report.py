"""Unit tests for table/figure rendering."""

import numpy as np
import pytest

from repro.harness.report import Figure, Series, Table, format_value, render_figure, render_table


class TestFormatValue:
    def test_ints(self):
        assert format_value(42) == "42"
        assert format_value(np.int64(7)) == "7"

    def test_floats(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(0.0) == "0"
        assert format_value(1.5e-7) == "1.500e-07"
        assert format_value(123456.0) == "1.235e+05"

    def test_bool_and_str(self):
        assert format_value(True) == "True"
        assert format_value("abc") == "abc"


class TestTable:
    def make(self):
        t = Table(title="T", headers=["name", "a", "b"])
        t.add_row("x", 1.0, 2.0)
        t.add_row("y", 3.0, 4.0)
        return t

    def test_add_row_validates_width(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.add_row("z", 1.0)

    def test_column_extraction(self):
        t = self.make()
        assert t.column("a") == [1.0, 3.0]

    def test_column_missing(self):
        with pytest.raises(KeyError, match="no column"):
            self.make().column("zz")

    def test_row_by_label(self):
        assert self.make().row_by_label("y") == ["y", 3.0, 4.0]
        with pytest.raises(KeyError):
            self.make().row_by_label("zzz")

    def test_render_contains_everything(self):
        t = self.make()
        t.notes.append("a note")
        text = render_table(t)
        for token in ("T", "name", "a", "b", "x", "y", "note: a note"):
            assert token in text

    def test_render_aligns_columns(self):
        lines = render_table(self.make()).splitlines()
        header_line = next(l for l in lines if "name" in l)
        row_line = next(l for l in lines if l.strip().startswith("x"))
        # separators sit at the same offsets in header and data rows
        assert [i for i, c in enumerate(header_line) if c == "|"] == [
            i for i, c in enumerate(row_line) if c == "|"
        ]


class TestFigure:
    def make(self):
        x = np.linspace(0, 1, 16)
        f = Figure(title="F", x=x)
        f.add_series("sin", np.sin(x))
        f.add_series("cos", np.cos(x))
        return f

    def test_series_lookup(self):
        f = self.make()
        assert f.get("sin").name == "sin"
        with pytest.raises(KeyError):
            f.get("tan")

    def test_length_mismatch_rejected(self):
        f = self.make()
        with pytest.raises(ValueError):
            f.add_series("bad", np.zeros(5))

    def test_render_has_legend_and_axes(self):
        text = render_figure(self.make())
        assert "legend" in text
        assert "sin" in text and "cos" in text
        assert "y in [" in text

    def test_render_empty(self):
        f = Figure(title="E", x=np.zeros(3))
        assert "no series" in f.render()

    def test_constant_series_renders(self):
        f = Figure(title="C", x=np.arange(4.0))
        f.add_series("flat", np.ones(4))
        assert "flat" in f.render()

    def test_series_dataclass(self):
        s = Series(name="s", y=[1, 2, 3])
        assert s.y.dtype == np.float64
