"""Tests for the divergence microscope (repro.diverge).

The contract under test: identical seed/config produce byte-identical
hash streams (within and across processes), an injected fault is
localized to its exact step/site/field, a stride > 1 ladder brackets the
divergence to the correct window, and the ULP machinery is a faithful
monotone distance.
"""

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.diverge import (
    STATE_SITE,
    DivergenceReport,
    StateHashLadder,
    compare_ladders,
    compare_paths,
    fault_footprint,
    hash_array,
    onset_curve,
    read_hashes,
    record_run,
    replay,
    ulp_distance,
    ulp_stats,
    write_hashes,
)
from repro.resilience.faults import FaultPlan, FaultSpec

SRC = Path(__file__).resolve().parent.parent / "src"

QUICK = dict(workload="clamr", steps=10, nx=8, max_level=1, policy="mixed")


def plan_of(*specs, seed=0):
    return FaultPlan(specs=tuple(FaultSpec.parse(s) for s in specs), seed=seed)


class TestHashArray:
    def test_deterministic(self):
        a = np.linspace(0.0, 1.0, 100)
        assert hash_array(a).hash == hash_array(a.copy()).hash

    def test_single_bit_changes_hash(self):
        a = np.linspace(0.0, 1.0, 100)
        b = a.copy()
        b[50] = np.nextafter(b[50], 2.0)
        assert hash_array(a).hash != hash_array(b).hash

    def test_dtype_in_hash(self):
        a = np.zeros(8, dtype=np.float32)
        assert hash_array(a).hash != hash_array(a.astype(np.float64)).hash

    def test_shape_in_hash(self):
        a = np.zeros(12)
        assert hash_array(a).hash != hash_array(a.reshape(3, 4)).hash

    def test_chunk_localization(self):
        a = np.zeros(10_000)
        b = a.copy()
        b[9_000] = 1.0
        fa, fb = hash_array(a, chunk=4096), hash_array(b, chunk=4096)
        differing = [i for i, (x, y) in enumerate(zip(fa.chunks, fb.chunks)) if x != y]
        assert differing == [9_000 // 4096]

    def test_scalar_hashable(self):
        assert hash_array(np.float64(0.5)).shape == (1,)

    def test_byte_order_fixed(self):
        # the hash is defined over little-endian bytes regardless of the
        # in-memory byte order
        a = np.linspace(0.0, 1.0, 16)
        swapped = a.astype(a.dtype.newbyteorder(">"))
        assert hash_array(a).hash == hash_array(swapped).hash


class TestLadder:
    def test_stride_controls_hashed_steps(self):
        ladder = StateHashLadder(stride=4)
        hashed = [s for s in range(1, 13) if ladder.should_hash(s)]
        assert hashed == [4, 8, 12]

    def test_root_changes_with_any_chunk(self):
        a = StateHashLadder()
        b = StateHashLadder()
        x = np.linspace(0, 1, 32)
        y = x.copy()
        y[-1] = np.nextafter(y[-1], 2.0)
        a.record_site(1, "k", {"H": x})
        b.record_site(1, "k", {"H": y})
        assert a.root() != b.root()

    def test_steps_must_not_decrease(self):
        ladder = StateHashLadder()
        ladder.record_site(2, "k", {"H": np.zeros(4)})
        with pytest.raises(ValueError, match="non-decreasing"):
            ladder.record_site(1, "k", {"H": np.zeros(4)})

    def test_roundtrip_through_file(self, tmp_path):
        ladder = StateHashLadder(stride=2, label="t")
        ladder.record_site(2, "k", {"H": np.arange(8.0), "U": np.ones(8)})
        ladder.record_site(4, "k", {"H": np.arange(8.0) * 2, "U": np.ones(8)})
        path = tmp_path / "hashes.jsonl"
        write_hashes(ladder, path)
        loaded = read_hashes(path)
        assert loaded.root() == ladder.root()
        assert loaded.stride == 2 and loaded.nsteps == 2

    def test_write_is_byte_deterministic(self, tmp_path):
        ladder = StateHashLadder()
        ladder.record_site(1, "k", {"H": np.arange(16.0)})
        write_hashes(ladder, tmp_path / "a.jsonl")
        write_hashes(ladder, tmp_path / "b.jsonl")
        assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()

    def test_newer_schema_refused(self, tmp_path):
        ladder = StateHashLadder()
        ladder.record_site(1, "k", {"H": np.zeros(4)})
        path = tmp_path / "hashes.jsonl"
        write_hashes(ladder, path)
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["version"] = 999
        path.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="upgrade repro"):
            read_hashes(path)

    def test_tampered_stream_detected(self, tmp_path):
        ladder = StateHashLadder()
        ladder.record_site(1, "k", {"H": np.zeros(4)})
        ladder.record_site(2, "k", {"H": np.ones(4)})
        path = tmp_path / "hashes.jsonl"
        write_hashes(ladder, path)
        lines = path.read_text().splitlines()
        doc = json.loads(lines[1])
        doc["sites"][0]["fields"][0]["chunks"][0] = "0" * 16
        path.write_text("\n".join([lines[0], json.dumps(doc)] + lines[2:]) + "\n")
        with pytest.raises(ValueError, match="hash"):
            read_hashes(path)


class TestUlp:
    def test_zero_for_identical(self):
        a = np.linspace(-1, 1, 64)
        assert int(ulp_distance(a, a.copy()).max()) == 0

    def test_one_for_adjacent(self):
        a = np.array([1.0, -2.0, 1e-300])
        b = np.array([np.nextafter(x, np.inf) for x in a])
        np.testing.assert_array_equal(ulp_distance(a, b), [1, 1, 1])

    def test_crosses_zero(self):
        # +0.0 and -0.0 are distinct representations, so the walk
        # -tiny -> -0.0 -> +0.0 -> +tiny is three key increments
        tiny = np.float64(5e-324)  # smallest subnormal
        assert int(ulp_distance(np.array([tiny]), np.array([-tiny]))[0]) == 3

    def test_mixed_precision_measured_in_coarser(self):
        a = np.array([1.0], dtype=np.float32)
        b = a.astype(np.float64)
        b[0] = np.nextafter(np.float32(1.0), np.float32(2.0))
        assert int(ulp_distance(a, b)[0]) == 1

    def test_both_nan_is_zero_distance(self):
        a = np.array([np.nan, 1.0])
        b = np.array([np.nan, 1.0])
        assert int(ulp_distance(a, b).max()) == 0

    def test_stats_locate_worst(self):
        a = np.zeros(10)
        b = np.zeros(10)
        b[3] = np.nextafter(0.0, 1.0)
        b[7] = 1e-300
        st = ulp_stats(a, b)
        assert st["count_diff"] == 2
        assert st["first_diff_index"] == 3
        assert st["worst_index"] == 7

    def test_shape_mismatch_not_comparable(self):
        st = ulp_stats(np.zeros(4), np.zeros(5))
        assert st["comparable"] is False


class TestRecordCompare:
    def test_identical_runs_bit_identical(self, tmp_path):
        a = record_run(tmp_path / "a", **QUICK)
        b = record_run(tmp_path / "b", **QUICK)
        assert a.root == b.root
        assert (tmp_path / "a/hashes.jsonl").read_bytes() == (
            tmp_path / "b/hashes.jsonl"
        ).read_bytes()
        report = compare_paths(tmp_path / "a", tmp_path / "b")
        assert not report.diverged

    def test_cross_process_byte_identity(self, tmp_path):
        """Same seed/config in two fresh interpreters → same bytes on disk."""
        env = dict(os.environ, PYTHONPATH=str(SRC))
        for name in ("p1", "p2"):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "diverge", "record",
                 str(tmp_path / name), "--workload", "clamr", "--steps", "8",
                 "--nx", "8", "--policy", "mixed"],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr[-2000:]
        assert (tmp_path / "p1/hashes.jsonl").read_bytes() == (
            tmp_path / "p2/hashes.jsonl"
        ).read_bytes()

    def test_bitflip_localized_to_exact_site(self, tmp_path):
        clean = record_run(tmp_path / "clean", **QUICK)
        plan = plan_of("bitflip:H:6:87:21", seed=5)
        faulted = record_run(tmp_path / "faulted", plan=plan, **QUICK)
        assert [e.step for e in faulted.injected] == [6]
        report = compare_paths(tmp_path / "clean", tmp_path / "faulted")
        assert report.diverged
        d = report.divergence
        assert (d.step, d.site, d.field) == (6, STATE_SITE, "H")
        assert d.chunk == 87 // 4096  # == 0: the flipped element's chunk
        assert "step 6" in report.summary() and "field H" in report.summary()

    def test_stride_brackets_divergence_window(self, tmp_path):
        kwargs = dict(QUICK, steps=16, hash_stride=4)
        record_run(tmp_path / "clean", **kwargs)
        record_run(tmp_path / "faulted", plan=plan_of("bitflip:H:6"), **kwargs)
        report = compare_paths(tmp_path / "clean", tmp_path / "faulted")
        assert report.diverged
        # fault at 6 → last clean hashed step 4, first divergent hashed step 8
        assert report.divergence.step == 8
        assert report.divergence.window == (4, 8)

    def test_fault_after_last_hash_of_window(self, tmp_path):
        # fault exactly on a hashed step diverges at that step
        kwargs = dict(QUICK, steps=16, hash_stride=4)
        record_run(tmp_path / "clean", **kwargs)
        record_run(tmp_path / "faulted", plan=plan_of("bitflip:H:8"), **kwargs)
        report = compare_paths(tmp_path / "clean", tmp_path / "faulted")
        assert report.divergence.step == 8
        assert report.divergence.window == (4, 8)

    def test_knob_mismatch_reported(self, tmp_path):
        record_run(tmp_path / "a", **QUICK)
        record_run(tmp_path / "b", **dict(QUICK, hash_stride=2))
        report = compare_paths(tmp_path / "a", tmp_path / "b")
        assert any("stride" in line for line in report.meta_mismatch)

    def test_different_policies_diverge_with_meta_note(self, tmp_path):
        record_run(tmp_path / "a", **QUICK)
        record_run(tmp_path / "b", **dict(QUICK, policy="full"))
        report = compare_paths(tmp_path / "a", tmp_path / "b")
        assert report.diverged
        assert any("policy" in line for line in report.meta_mismatch)

    def test_report_json_roundtrips(self, tmp_path):
        record_run(tmp_path / "a", **QUICK)
        record_run(tmp_path / "b", plan=plan_of("bitflip:H:3"), **QUICK)
        report = compare_paths(tmp_path / "a", tmp_path / "b")
        doc = json.loads(report.to_json())
        assert doc["diverged"] is True
        assert doc["divergence"]["step"] == 3

    def test_self_workload_roundtrip(self, tmp_path):
        kwargs = dict(workload="self", steps=6, elems=2, order=2, precision="double")
        a = record_run(tmp_path / "a", **kwargs)
        b = record_run(tmp_path / "b", **kwargs)
        assert a.root == b.root
        faulted = record_run(
            tmp_path / "c", plan=plan_of("bitflip:rho:4"), **kwargs
        )
        report = compare_paths(tmp_path / "a", tmp_path / "c")
        assert report.diverged
        assert (report.divergence.step, report.divergence.field) == (4, "rho")


class TestInSimSites:
    """The simulation-loop ladder hooks hash per-kernel-site state."""

    def test_clamr_sites_present(self):
        run = record_run(None, **QUICK)
        entry = run.ladder.step_entry(1)
        names = [s.name for s in entry.sites]
        assert "clamr/compute_timestep" in names
        assert any(n.startswith("clamr/step_") or "kernel" in n or "/" in n
                   for n in names)
        assert STATE_SITE in names

    def test_self_sites_present(self):
        run = record_run(None, workload="self", steps=2, elems=2, order=2)
        names = [s.name for s in run.ladder.step_entry(1).sites]
        assert "self/stable_dt" in names
        assert "self/rk3_step" in names
        assert STATE_SITE in names

    def test_in_sim_sites_bisect_below_state(self, tmp_path):
        # two different scatter backends must be bit-identical (CSR plan
        # kernels were built for exactly this); the ladder proves it at
        # kernel-site granularity
        a = record_run(None, scatter="plan", **QUICK)
        b = record_run(None, scatter="add_at", **QUICK)
        report = compare_ladders(a.ladder, b.ladder)
        assert not report.diverged, report.summary()


class TestReplay:
    def test_replay_refines_and_quantifies(self, tmp_path):
        kwargs = dict(QUICK, steps=16, hash_stride=4, checkpoint_interval=4)
        record_run(tmp_path / "clean", **kwargs)
        record_run(tmp_path / "faulted", plan=plan_of("bitflip:H:6"), **kwargs)
        report = replay(tmp_path / "clean", tmp_path / "faulted")
        assert report.diverged
        # coarse bracket was (4, 8]; refined pins the exact step
        assert report.refined is not None
        assert report.refined.divergence.step == 6
        assert report.refined.divergence.field == "H"
        assert report.ckpt_a == 4 and report.ckpt_b == 4
        by_step = {p["step"]: p["max_ulp"] for p in report.ulp_curve}
        assert by_step[5] == 0  # clean before the fault
        assert by_step[6] > 0  # corrupted at the fault step
        assert report.offending is not None
        assert report.offending["field"] == "H"
        assert report.offending["stats"]["count_diff"] >= 1

    def test_replay_without_checkpoints_starts_from_zero(self, tmp_path):
        kwargs = dict(QUICK, steps=8, hash_stride=4)
        record_run(tmp_path / "clean", **kwargs)
        record_run(tmp_path / "faulted", plan=plan_of("bitflip:H:2"), **kwargs)
        report = replay(tmp_path / "clean", tmp_path / "faulted")
        assert report.ckpt_a is None and report.ckpt_b is None
        assert report.refined.divergence.step == 2

    def test_clean_pair_skips_replay(self, tmp_path):
        record_run(tmp_path / "a", **QUICK)
        record_run(tmp_path / "b", **QUICK)
        report = replay(tmp_path / "a", tmp_path / "b")
        assert not report.diverged and report.ulp_curve == []


class TestOnset:
    def test_min_vs_full_monotone_cummax(self):
        report = onset_curve(workload="clamr", steps=6, nx=8, max_level=1)
        assert len(report.curve) == 6
        cummax = report.cummax
        assert all(b >= a for a, b in zip(cummax, cummax[1:]))
        assert cummax[-1] > 0  # min vs full must diverge in ULP terms

    def test_onset_steps_are_first_crossings(self):
        report = onset_curve(workload="clamr", steps=6, nx=8, max_level=1)
        for threshold, step in report.onset_steps.items():
            if step is None:
                continue
            assert report.cummax[step - 1] >= float(threshold)
            if step > 1:
                assert report.cummax[step - 2] < float(threshold)

    def test_identical_pair_never_onsets(self):
        report = onset_curve(workload="clamr", pair=("full", "full"),
                             steps=3, nx=8, max_level=1)
        assert report.cummax[-1] == 0
        assert all(s is None for s in report.onset_steps.values())


class TestFootprint:
    def test_footprint_matches_injection(self):
        plan = plan_of("bitflip:H:6", seed=2)
        fp = fault_footprint(plan, **QUICK)
        assert fp["diverged"]
        assert fp["latency_steps"] == 0
        assert fp["site_match"] is True
        assert fp["first_divergence"]["field"] == "H"

    def test_empty_plan_has_no_footprint(self):
        fp = fault_footprint(FaultPlan(specs=(), seed=0), **QUICK)
        assert not fp["diverged"] and fp["injected"] == []


class TestLedgerIntegration:
    def test_ladder_joins_identity_and_fidelity(self):
        from repro.clamr import ClamrSimulation, DamBreakConfig
        from repro.ledger.record import record_from_clamr
        from repro.telemetry import Telemetry

        ladder = StateHashLadder(stride=2)
        tel = Telemetry(label="t", ladder=ladder)
        cfg = DamBreakConfig(nx=8, ny=8, max_level=1)
        res = ClamrSimulation(cfg, policy="mixed", telemetry=tel).run(6)
        record = record_from_clamr(res, tel, cfg, label="t")
        assert record.config["run"]["hash_ladder"] == {"stride": 2, "chunk": 4096}
        digest = record.fidelity["state_hash"]
        assert digest["steps"] == 3 and digest["last_step"] == 6
        assert digest["root"] == ladder.root()

    def test_no_ladder_keeps_record_shape(self):
        # pre-ladder baseline fingerprints must stay valid
        from repro.clamr import ClamrSimulation, DamBreakConfig
        from repro.ledger.record import record_from_clamr
        from repro.telemetry import Telemetry

        tel = Telemetry(label="t")
        cfg = DamBreakConfig(nx=8, ny=8, max_level=1)
        res = ClamrSimulation(cfg, policy="mixed", telemetry=tel).run(4)
        record = record_from_clamr(res, tel, cfg, label="t")
        assert "hash_ladder" not in record.config["run"]
        assert "state_hash" not in record.fidelity


class TestExecutorIntegration:
    def test_spec_builds_ladder_and_bundle_ships_it(self):
        from repro.parallel.executor import TelemetrySpec
        from repro.telemetry.bundle import TelemetryBundle

        tel = TelemetrySpec(label="w", hash_stride=2, hash_chunk=128).build()
        assert tel.ladder is not None and tel.ladder.stride == 2
        tel.ladder.record_site(2, "k", {"H": np.zeros(4)})
        bundle = TelemetryBundle.of(tel)
        assert bundle.ladder is tel.ladder

    def test_jobs2_lanes_bit_identical_to_serial(self, tmp_path):
        from repro.harness.experiments import run_clamr_levels

        run_clamr_levels(nx=8, steps=6, max_level=1, jobs=1,
                         hash_dir=tmp_path / "serial", label="lane")
        run_clamr_levels(nx=8, steps=6, max_level=1, jobs=2,
                         hash_dir=tmp_path / "par", label="lane")
        serial = sorted((tmp_path / "serial").glob("*.hashes.jsonl"))
        par = sorted((tmp_path / "par").glob("*.hashes.jsonl"))
        assert [p.name for p in serial] == [p.name for p in par] and serial
        for s, p in zip(serial, par):
            assert s.read_bytes() == p.read_bytes(), s.name
            report = compare_paths(s, p)
            assert not report.diverged
