"""Job specs: validation, round-trips, and the pinned workload-key prediction.

The service caches results under a key predicted *before* the run; these
tests pin the prediction against the key the ledger actually computes
after a real run.  If the hashed run identity ever changes on one side
only, ``test_predicted_key_matches_*`` fails and the spec (or the
ledger) must be updated in the same commit.
"""

import pytest

from repro.service.jobs import JobSpec, execute_job


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            JobSpec(workload="hydra")

    def test_clamr_knobs_validated(self):
        with pytest.raises(ValueError, match="policy"):
            JobSpec(workload="clamr", policy="quadruple")
        with pytest.raises(ValueError, match="scheme"):
            JobSpec(workload="clamr", scheme="godunov")

    def test_self_precision_validated(self):
        with pytest.raises(ValueError, match="precision"):
            JobSpec(workload="self", precision="half")
        # clamr-only knobs are not validated against the self family
        JobSpec(workload="self", precision="single")

    def test_positive_integers_enforced(self):
        with pytest.raises(ValueError, match="steps"):
            JobSpec(workload="clamr", steps=0)
        with pytest.raises(ValueError, match="seed"):
            JobSpec(workload="clamr", seed=-1)
        with pytest.raises(ValueError, match="watch_stride"):
            JobSpec(workload="clamr", watch_stride=0)

    def test_round_trip(self):
        spec = JobSpec(workload="clamr", nx=16, steps=10, policy="full", label="rt")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        doc = JobSpec(workload="clamr").to_dict()
        doc["gpu"] = True
        with pytest.raises(ValueError, match="unknown job spec field"):
            JobSpec.from_dict(doc)

    def test_describe(self):
        assert JobSpec(workload="clamr", label="named").describe() == "named"
        assert "clamr" in JobSpec(workload="clamr", nx=16).describe()
        assert "self" in JobSpec(workload="self").describe()


class TestIdentity:
    def test_key_ignores_other_familys_knobs(self):
        a = JobSpec(workload="clamr", nx=16, steps=10)
        b = JobSpec(workload="clamr", nx=16, steps=10, elems=7, order=2)
        assert a.workload_key() == b.workload_key()

    def test_key_tracks_own_knobs(self):
        base = JobSpec(workload="clamr", nx=16, steps=10, policy="mixed")
        keys = {
            base.workload_key(),
            JobSpec(workload="clamr", nx=18, steps=10, policy="mixed").workload_key(),
            JobSpec(workload="clamr", nx=16, steps=12, policy="mixed").workload_key(),
            JobSpec(workload="clamr", nx=16, steps=10, policy="full").workload_key(),
            JobSpec(workload="clamr", nx=16, steps=10, policy="mixed", seed=1).workload_key(),
        }
        assert len(keys) == 5

    def test_predicted_key_matches_clamr_record(self):
        spec = JobSpec(workload="clamr", nx=12, steps=8, watch_stride=2, policy="mixed")
        record = execute_job(spec.to_dict())
        assert record.workload_key == spec.workload_key()
        assert record.policy == spec.policy_name

    def test_predicted_key_matches_self_record(self):
        spec = JobSpec(workload="self", elems=2, order=2, steps=4, watch_stride=2)
        record = execute_job(spec.to_dict())
        assert record.workload_key == spec.workload_key()
        assert record.policy == "double"
