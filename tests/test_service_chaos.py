"""The chaos harness is itself the test: one full fault-injection pass.

``run_chaos`` kills a worker with SIGKILL mid-computation, tears a queue
file, and corrupts a cache entry, then audits exactly-once completion,
baseline-identical physics, quarantine hygiene, and cache/ledger
bit-identity.  Slow by this suite's standards (several seconds of real
workload, twice) but it is the test that makes every robustness claim in
docs/service.md falsifiable.
"""

from repro.service import ChaosOptions, run_chaos


def test_chaos_pass_survives_every_fault(tmp_path):
    report = run_chaos(tmp_path, ChaosOptions())
    assert report.ok, report.summary()
    # the kill really landed mid-computation (otherwise the pass proved
    # less than it claims) ...
    assert report.kill_state == "running"
    assert report.killed_pid > 0
    # ... and the audit saw the full expected shape, not a vacuous pass
    assert report.done_computed == 4
    assert report.done_cached == 2
    assert report.ledger_records == 4
    assert list(report.quarantined) == ["torn-job"]
    assert -9 in report.worker_returncodes  # one worker died by SIGKILL
