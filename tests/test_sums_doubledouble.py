"""Property tests for the error-free transformations and double-double type."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sums import DoubleDouble, dd_sum, split, two_prod, two_sum

moderate_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e150, max_value=1e150
)
# TwoProd's error-free property requires the product (and its error term)
# not to underflow: keep magnitudes well inside [2^-511, 2^511].
nonvanishing = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=1e100
).filter(lambda x: x == 0.0 or abs(x) >= 1e-80)


class TestTwoSum:
    @given(moderate_floats, moderate_floats)
    @settings(max_examples=300, deadline=None)
    def test_error_free(self, a, b):
        s, e = two_sum(a, b)
        assert s == a + b  # s is the rounded sum
        # exactness: a + b == s + e in exact arithmetic.  Verify via fsum,
        # which is exact for two-term decompositions.
        assert math.fsum([a, b, -s, -e]) == 0.0

    def test_catastrophic_cancellation_recovered(self):
        s, e = two_sum(1e16, 1.0)
        assert s == 1e16  # the 1.0 was absorbed...
        assert e == 1.0  # ...but captured exactly in the error term


class TestSplit:
    @given(st.floats(allow_nan=False, allow_infinity=False, min_value=-1e150, max_value=1e150))
    @settings(max_examples=300, deadline=None)
    def test_split_is_exact(self, a):
        hi, lo = split(a)
        assert hi + lo == a
        assert abs(lo) <= abs(hi) or a == 0.0

    def test_overflow_guard(self):
        with pytest.raises(OverflowError):
            split(2.0**1000)


class TestTwoProd:
    @given(nonvanishing, nonvanishing)
    @settings(max_examples=300, deadline=None)
    def test_error_free(self, a, b):
        p, e = two_prod(a, b)
        assert p == a * b
        # exact check via integer arithmetic on scaled values is overkill;
        # Fraction gives an exact rational comparison.
        from fractions import Fraction

        assert Fraction(a) * Fraction(b) == Fraction(p) + Fraction(e)


class TestDoubleDouble:
    def test_construction_and_float(self):
        x = DoubleDouble.from_float(1.5)
        assert float(x) == 1.5
        assert x.lo == 0.0

    def test_add_recovers_low_bits(self):
        x = DoubleDouble.from_float(1e16) + 1.0
        assert x.hi == 1e16 and x.lo == 1.0
        y = x - 1e16
        assert float(y) == 1.0

    def test_mul(self):
        x = DoubleDouble.from_float(1.0 + 2**-30)
        y = x * x
        # (1 + u)^2 = 1 + 2u + u^2; u^2 = 2^-60 is below float64 resolution
        # at 1.0 but must be present in the double-double
        assert y.hi == float(np.float64((1 + 2**-30) ** 2))
        from fractions import Fraction

        exact = (Fraction(1) + Fraction(1, 2**30)) ** 2
        assert Fraction(y.hi) + Fraction(y.lo) == exact

    def test_comparisons(self):
        a = DoubleDouble.from_float(1.0) + 2**-80
        b = DoubleDouble.from_float(1.0)
        assert b < a
        assert b <= a
        assert a == a
        assert float(a) == 1.0  # invisible at float64...
        assert a != b  # ...but not to the double-double

    def test_neg_and_abs(self):
        x = DoubleDouble.from_float(-2.0) + 2**-70
        assert float(-x) == 2.0
        assert x.abs() >= DoubleDouble.from_float(0.0)

    def test_scalar_interop(self):
        assert float(2.0 + DoubleDouble.from_float(3.0)) == 5.0
        assert float(10.0 - DoubleDouble.from_float(4.0)) == 6.0
        assert float(DoubleDouble.from_float(3.0) * 2) == 6.0

    @given(st.lists(nonvanishing, min_size=2, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_renormalization_invariant(self, values):
        acc = DoubleDouble.from_float(0.0)
        for v in values:
            acc = acc + v
        # invariant: hi is the float64 rounding of the full value
        assert acc.hi == acc.hi + acc.lo or abs(acc.lo) <= abs(acc.hi) * 2**-52


class TestDdSum:
    def test_exact_on_cancellation(self):
        x = np.array([1e100, 1.0, -1e100])
        assert float(dd_sum(x)) == 1.0

    def test_matches_fsum(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=3000) * 10.0 ** rng.integers(-20, 20, size=3000)
        assert float(dd_sum(x)) == math.fsum(x.tolist())

    def test_empty(self):
        assert float(dd_sum(np.array([]))) == 0.0

    @given(st.lists(st.floats(-1e15, 1e15), min_size=0, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_property_matches_fsum(self, values):
        # dd_sum accumulates error terms in a single float64, so inputs
        # spanning >106 bits can land one ulp off the correctly-rounded sum
        result = float(dd_sum(np.array(values, dtype=np.float64)))
        exact = math.fsum(values)
        assert result == pytest.approx(exact, rel=4 * np.finfo(np.float64).eps, abs=1e-290)
