"""Unit tests for the AWS cost model (paper §VI / Table VII)."""

import pytest

from repro.cost.aws import (
    ACCUMULATION_RATE,
    RATES_2017,
    TIME_SCALE,
    application_cost,
    ec2_monthly_cost,
    s3_monthly_cost,
)

# the paper's measured Haswell inputs (Table I / Table V)
CLAMR_RUNTIMES = {"min": 26.3, "mixed": 29.9, "full": 31.3}
SELF_RUNTIMES = {"single": 179.5, "double": 270.4}
CLAMR_FILES_GB = {"min": 0.086, "mixed": 0.086, "full": 0.128}


class TestCalibration:
    """Feeding the paper's own inputs must reproduce Table VII's figures."""

    def test_clamr_full_compute(self):
        assert ec2_monthly_cost(CLAMR_RUNTIMES["full"]) == pytest.approx(267.07, rel=0.01)

    def test_clamr_min_compute(self):
        assert ec2_monthly_cost(CLAMR_RUNTIMES["min"]) == pytest.approx(223.22, rel=0.01)

    def test_clamr_mixed_compute(self):
        assert ec2_monthly_cost(CLAMR_RUNTIMES["mixed"]) == pytest.approx(257.10, rel=0.01)

    def test_clamr_full_storage(self):
        util = CLAMR_RUNTIMES["full"] * TIME_SCALE
        assert s3_monthly_cost(CLAMR_FILES_GB["full"], util) == pytest.approx(181.56, rel=0.01)

    def test_clamr_min_storage_is_two_thirds(self):
        util = CLAMR_RUNTIMES["full"] * TIME_SCALE
        full = s3_monthly_cost(CLAMR_FILES_GB["full"], util)
        minimum = s3_monthly_cost(CLAMR_FILES_GB["min"], util)
        assert minimum / full == pytest.approx(0.086 / 0.128, rel=1e-6)
        assert minimum == pytest.approx(121.98, rel=0.02)  # paper: 121.66

    def test_self_compute_with_discount(self):
        # paper: "scaled the compute time down by 50%"
        double = ec2_monthly_cost(SELF_RUNTIMES["double"], compute_discount=0.5)
        single = ec2_monthly_cost(SELF_RUNTIMES["single"], compute_discount=0.5)
        assert double == pytest.approx(1157.94, rel=0.01)
        assert single == pytest.approx(763.32, rel=0.02)

    def test_clamr_savings_fractions(self):
        """The paper's claims: ~23% at min, ~15% at mixed."""
        util = CLAMR_RUNTIMES["full"] * TIME_SCALE
        totals = {
            level: ec2_monthly_cost(rt) + s3_monthly_cost(CLAMR_FILES_GB[level], util)
            for level, rt in CLAMR_RUNTIMES.items()
        }
        saving_min = 1.0 - totals["min"] / totals["full"]
        saving_mixed = 1.0 - totals["mixed"] / totals["full"]
        assert saving_min == pytest.approx(0.23, abs=0.02)
        assert saving_mixed == pytest.approx(0.15, abs=0.02)


class TestMechanics:
    def test_utilization_capped_at_full_week(self):
        # absurd runtime cannot exceed 168 h/week of one instance
        huge = ec2_monthly_cost(1e6)
        cap = 168.0 * RATES_2017.weeks_per_month * RATES_2017.c4_8xlarge_per_hour
        assert huge == pytest.approx(cap)

    def test_zero_runtime_zero_cost(self):
        assert ec2_monthly_cost(0.0) == 0.0
        assert s3_monthly_cost(0.0, 10.0) == 0.0

    def test_blended_rate(self):
        assert RATES_2017.s3_blended_per_gb_month == pytest.approx(0.01775)

    def test_output_reduction_divides(self):
        a = s3_monthly_cost(1.0, 10.0, output_reduction=5.0)
        b = s3_monthly_cost(1.0, 10.0, output_reduction=10.0)
        assert a == pytest.approx(2 * b)

    def test_validation(self):
        with pytest.raises(ValueError):
            ec2_monthly_cost(-1.0)
        with pytest.raises(ValueError):
            ec2_monthly_cost(1.0, compute_discount=0.0)
        with pytest.raises(ValueError):
            s3_monthly_cost(-1.0, 1.0)
        with pytest.raises(ValueError):
            s3_monthly_cost(1.0, 1.0, output_reduction=0.0)


class TestApplicationCost:
    def test_breakdown_total(self):
        c = application_cost("clamr/full", runtime_s=31.3, output_gb=0.128)
        assert c.total_usd == pytest.approx(c.compute_usd + c.storage_usd)
        assert c.total_usd == pytest.approx(448.63, rel=0.02)  # paper total

    def test_storage_reference_mode(self):
        a = application_cost(
            "x", runtime_s=10.0, output_gb=0.1,
            storage_follows_compute=False, reference_runtime_s=20.0,
        )
        b = application_cost("y", runtime_s=20.0, output_gb=0.1)
        assert a.storage_usd == pytest.approx(b.storage_usd)
        assert a.compute_usd < b.compute_usd

    def test_reference_required(self):
        with pytest.raises(ValueError, match="reference"):
            application_cost("x", runtime_s=1.0, output_gb=0.1, storage_follows_compute=False)

    def test_accumulation_rate_positive(self):
        assert ACCUMULATION_RATE > 0
