"""Unit + property tests for the CLAMR cell-soup mesh."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clamr.mesh import AmrMesh


def refined_mesh() -> AmrMesh:
    """A 2x2 coarse mesh with the (0,0) coarse cell split into 4 children."""
    i = np.array([1, 0, 1, 0, 1, 0, 1])
    j = np.array([0, 1, 1, 0, 0, 1, 1])
    level = np.array([0, 0, 0, 1, 1, 1, 1])
    return AmrMesh(nx=2, ny=2, max_level=1, i=i, j=j, level=level)


class TestConstruction:
    def test_uniform_coarse(self):
        m = AmrMesh.uniform(4, 3)
        assert m.ncells == 12
        assert m.check_balance()

    def test_uniform_at_level(self):
        m = AmrMesh.uniform(2, 2, max_level=2, level=2)
        assert m.ncells == 64

    def test_level_exceeding_max_rejected(self):
        with pytest.raises(ValueError):
            AmrMesh.uniform(2, 2, max_level=1, level=2)

    def test_cells_outside_domain_rejected(self):
        with pytest.raises(ValueError):
            AmrMesh(nx=2, ny=2, max_level=0, i=[0, 5], j=[0, 0], level=[0, 0])

    def test_overlap_rejected(self):
        # a refined cell overlapping its parent
        with pytest.raises(ValueError, match="overlap"):
            AmrMesh(
                nx=1, ny=1, max_level=1,
                i=[0, 0, 1, 0, 1], j=[0, 0, 0, 1, 1], level=[0, 1, 1, 1, 1],
            )

    def test_gap_rejected(self):
        with pytest.raises(ValueError, match="gap|cover"):
            AmrMesh(nx=2, ny=1, max_level=0, i=[0], j=[0], level=[0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AmrMesh(nx=1, ny=1, max_level=0, i=[], j=[], level=[])


class TestGeometry:
    def test_cell_sizes_by_level(self):
        m = refined_mesh()
        sizes = m.cell_size()
        np.testing.assert_allclose(sizes[m.level == 0], 1.0)
        np.testing.assert_allclose(sizes[m.level == 1], 0.5)

    def test_areas_sum_to_domain(self):
        m = refined_mesh()
        assert m.cell_area().sum() == pytest.approx(4.0)

    def test_coarse_size_scaling(self):
        m = AmrMesh.uniform(4, 4, coarse_size=0.25)
        assert m.cell_size()[0] == 0.25
        assert m.cell_area().sum() == pytest.approx(1.0)

    def test_centers_inside_domain(self):
        m = refined_mesh()
        x, y = m.cell_centers()
        assert (x > 0).all() and (x < 2).all()
        assert (y > 0).all() and (y < 2).all()


class TestNeighbors:
    def test_uniform_interior_neighbors(self):
        m = AmrMesh.uniform(3, 3)
        # center cell is index 4 (row-major j*3+i)
        c = 4
        assert m.nlft[c] == 3 and m.nrht[c] == 5
        assert m.nbot[c] == 1 and m.ntop[c] == 7

    def test_boundary_self_reference(self):
        m = AmrMesh.uniform(3, 3)
        assert m.nlft[0] == 0 and m.nbot[0] == 0  # lower-left corner
        assert m.nrht[8] == 8 and m.ntop[8] == 8  # upper-right corner

    def test_coarse_fine_convention(self):
        m = refined_mesh()
        # the coarse cell to the right of the refined quad is (1,0,0)=index 0;
        # its left neighbor must be the *bottom* fine cell (1,0,1)=index 4
        coarse_right = 0
        assert m.level[m.nlft[coarse_right]] == 1
        fine = m.nlft[coarse_right]
        assert m.i[fine] == 1 and m.j[fine] == 0
        # the second fine neighbor is reachable as ntop of the first
        second = m.ntop[fine]
        assert m.level[second] == 1 and m.j[second] == 1

    def test_fine_sees_coarse(self):
        m = refined_mesh()
        # fine cell (1,0,1)=index 4 has the coarse (1,0,0)=index 0 on its right
        assert m.nrht[4] == 0

    def test_balance_check_detects_violation(self):
        # 4x1 coarse with one cell refined twice -> neighbor 2 levels apart
        i = [1, 2, 3] + [0, 1, 0] + [2, 3, 2, 3]
        j = [0, 0, 0] + [1, 1, 0] + [0, 0, 1, 1]
        lvl = [0, 0, 0] + [1, 1, 1] + [2, 2, 2, 2]
        m = AmrMesh(nx=4, ny=1, max_level=2, i=i, j=j, level=lvl)
        assert not m.check_balance()

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_neighbor_symmetry_uniform(self, nx, ny):
        """On a uniform mesh, neighbor links are mutual."""
        m = AmrMesh.uniform(nx, ny)
        cells = np.arange(m.ncells)
        interior_r = m.nrht != cells
        assert (m.nlft[m.nrht[interior_r]] == cells[interior_r]).all()
        interior_t = m.ntop != cells
        assert (m.nbot[m.ntop[interior_t]] == cells[interior_t]).all()


class TestHashAndSampling:
    def test_hash_covers_domain(self):
        m = refined_mesh()
        image = m.build_hash()
        assert image.shape == (4, 4)
        assert (image >= 0).all()

    def test_sample_to_uniform_piecewise_constant(self):
        m = refined_mesh()
        values = np.arange(m.ncells, dtype=np.float64)
        img = m.sample_to_uniform(values)
        # coarse cell index 0 covers a 2x2 fine block at i in [2,4), j in [0,2)
        block = img[0:2, 2:4]
        assert (block == 0.0).all()

    def test_sample_wrong_length_raises(self):
        m = refined_mesh()
        with pytest.raises(ValueError):
            m.sample_to_uniform(np.zeros(3))

    def test_memory_nbytes_positive(self):
        assert refined_mesh().memory_nbytes() > 0
