"""Tests for the second-order MUSCL kernel."""

import numpy as np
import pytest

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.clamr.kernels import FaceLists, compute_timestep, finite_diff_vectorized
from repro.clamr.mesh import AmrMesh
from repro.clamr.muscl import finite_diff_muscl, limited_slopes, minmod
from repro.clamr.state import ShallowWaterState
from repro.precision.policy import FULL_PRECISION, MIN_PRECISION


def bump_state(mesh, policy=FULL_PRECISION):
    x, y = mesh.cell_centers()
    lx = mesh.nx * mesh.coarse_size
    H = 1.0 + 0.3 * np.exp(-(((x - lx / 2) ** 2 + (y - lx / 2) ** 2) / (0.05 * lx * lx)))
    return ShallowWaterState(H=H, U=np.zeros_like(H), V=np.zeros_like(H), policy=policy)


class TestMinmod:
    def test_same_sign_picks_smaller(self):
        a = np.array([1.0, -2.0, 3.0])
        b = np.array([2.0, -1.0, 3.0])
        np.testing.assert_array_equal(minmod(a, b), [1.0, -1.0, 3.0])

    def test_opposite_signs_zero(self):
        np.testing.assert_array_equal(minmod(np.array([1.0]), np.array([-1.0])), [0.0])

    def test_zero_argument_zero(self):
        np.testing.assert_array_equal(minmod(np.array([0.0]), np.array([5.0])), [0.0])

    def test_dtype_preserved(self):
        out = minmod(np.ones(2, dtype=np.float32), np.ones(2, dtype=np.float32))
        assert out.dtype == np.float32


class TestSlopes:
    def test_linear_field_exact_slope(self):
        mesh = AmrMesh.uniform(8, 8, coarse_size=1 / 8)
        x, y = mesh.cell_centers()
        q = 2.0 * x + 3.0 * y
        size = mesh.cell_size()
        sx, sy = limited_slopes(mesh, q, size)
        interior = (mesh.nlft != np.arange(64)) & (mesh.nrht != np.arange(64))
        np.testing.assert_allclose(sx[interior], 2.0, atol=1e-12)
        interior_y = (mesh.nbot != np.arange(64)) & (mesh.ntop != np.arange(64))
        np.testing.assert_allclose(sy[interior_y], 3.0, atol=1e-12)

    def test_boundary_slopes_zero(self):
        mesh = AmrMesh.uniform(4, 4)
        q = mesh.cell_centers()[0] * 5.0
        sx, _ = limited_slopes(mesh, q, mesh.cell_size())
        # cells on the x-walls clip to zero (one-sided difference is zero)
        left_wall = mesh.nlft == np.arange(16)
        np.testing.assert_array_equal(sx[left_wall], 0.0)

    def test_extremum_slopes_zero(self):
        mesh = AmrMesh.uniform(8, 1)
        q = np.zeros(8)
        q[4] = 1.0  # isolated peak
        sx, _ = limited_slopes(mesh, q, mesh.cell_size())
        assert sx[4] == 0.0


class TestKernel:
    def test_lake_at_rest_steady(self):
        mesh = AmrMesh.uniform(6, 6)
        s = ShallowWaterState(H=np.full(36, 2.0), U=np.zeros(36), V=np.zeros(36))
        H0 = s.H.copy()
        for _ in range(5):
            finite_diff_muscl(mesh, s, 0.01)
        np.testing.assert_array_equal(s.H, H0)

    def test_mass_conserved(self):
        mesh = AmrMesh.uniform(10, 10, coarse_size=0.1)
        s = bump_state(mesh)
        area = mesh.cell_area()
        m0 = s.total_mass(area)
        for _ in range(20):
            dt = compute_timestep(mesh, s, 0.2)
            finite_diff_muscl(mesh, s, dt)
        assert s.total_mass(area) == pytest.approx(m0, rel=1e-13)

    def test_mass_conserved_on_amr_mesh(self):
        i = np.array([1, 0, 1, 0, 1, 0, 1])
        j = np.array([0, 1, 1, 0, 0, 1, 1])
        level = np.array([0, 0, 0, 1, 1, 1, 1])
        mesh = AmrMesh(nx=2, ny=2, max_level=1, i=i, j=j, level=level)
        s = bump_state(mesh)
        area = mesh.cell_area()
        m0 = s.total_mass(area)
        for _ in range(10):
            dt = compute_timestep(mesh, s, 0.15)
            finite_diff_muscl(mesh, s, dt)
        assert s.total_mass(area) == pytest.approx(m0, rel=1e-13)

    def test_less_diffusive_than_first_order(self):
        """Second order keeps more of the peak after smooth transport."""
        mesh = AmrMesh.uniform(32, 32, coarse_size=1 / 32)
        a = bump_state(mesh)
        b = a.copy()
        for _ in range(60):
            dt = compute_timestep(mesh, a, 0.2)
            finite_diff_muscl(mesh, a, dt)
            finite_diff_vectorized(mesh, b, dt)
        peak_muscl = float(a.H.max())
        peak_rusanov = float(b.H.max())
        assert peak_muscl > peak_rusanov

    def test_positivity_guard(self):
        """Near-dry cells must not go negative through reconstruction."""
        mesh = AmrMesh.uniform(16, 1, coarse_size=1 / 16)
        H = np.full(16, 1e-6)
        H[:8] = 1.0
        s = ShallowWaterState(H=H, U=np.zeros(16), V=np.zeros(16))
        for _ in range(30):
            dt = compute_timestep(mesh, s, 0.1)
            finite_diff_muscl(mesh, s, dt)
        assert (s.H > 0).all()
        assert np.isfinite(s.H).all()

    def test_float32_path(self):
        mesh = AmrMesh.uniform(8, 8)
        s = bump_state(mesh, MIN_PRECISION)
        dt = compute_timestep(mesh, s, 0.2)
        finite_diff_muscl(mesh, s, dt)
        assert s.H.dtype == np.float32
        assert np.isfinite(s.H).all()

    def test_counters(self):
        from repro.machine.counters import KernelCounters

        mesh = AmrMesh.uniform(4, 4)
        s = bump_state(mesh)
        c = KernelCounters()
        finite_diff_muscl(mesh, s, 1e-4, counters=c)
        assert c.flops > 0 and c.state_bytes > 0


class TestConvergenceOrder:
    def _error_at(self, nx: int, scheme: str) -> float:
        """Error vs a fine-grid reference for a smooth short-time problem."""
        cfg = DamBreakConfig(
            nx=nx, ny=nx, max_level=0, start_refined=False,
            column_radius_fraction=0.25, column_height=1.1,
        )
        sim = ClamrSimulation(cfg, policy="full", scheme=scheme)
        sim.run_to_time(0.02)
        field = sim.mesh.sample_to_uniform(sim.state.H.astype(np.float64))
        # reference on 4x the cells
        ref_cfg = DamBreakConfig(
            nx=nx * 4, ny=nx * 4, max_level=0, start_refined=False,
            column_radius_fraction=0.25, column_height=1.1,
        )
        ref = ClamrSimulation(ref_cfg, policy="full", scheme="muscl")
        ref.run_to_time(0.02)
        ref_field = ref.mesh.sample_to_uniform(ref.state.H.astype(np.float64))
        # block-average reference down to the coarse grid
        k = ref_field.shape[0] // field.shape[0]
        coarse_ref = ref_field.reshape(field.shape[0], k, field.shape[1], k).mean(axis=(1, 3))
        return float(np.abs(field - coarse_ref).mean())

    @pytest.mark.slow
    def test_muscl_converges_faster(self):
        e_muscl = [self._error_at(n, "muscl") for n in (16, 32)]
        e_rusanov = [self._error_at(n, "rusanov") for n in (16, 32)]
        rate_muscl = np.log2(e_muscl[0] / e_muscl[1])
        rate_rusanov = np.log2(e_rusanov[0] / e_rusanov[1])
        assert rate_muscl > rate_rusanov
        assert rate_muscl > 1.2  # clearly above first order


class TestSimulationIntegration:
    def test_scheme_flag(self):
        cfg = DamBreakConfig(nx=16, ny=16, max_level=1)
        sim = ClamrSimulation(cfg, policy="full", scheme="muscl")
        res = sim.run(30)
        assert res.mass_drift < 1e-13
        assert np.isfinite(res.field).all()

    def test_invalid_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            ClamrSimulation(DamBreakConfig(nx=16, ny=16), scheme="weno")

    def test_muscl_scalar_not_available(self):
        with pytest.raises(ValueError, match="scalar"):
            ClamrSimulation(DamBreakConfig(nx=16, ny=16), scheme="muscl", vectorized=False)
