"""Bit-identity and cache behavior of the ScatterPlan fast path.

The scatter optimization's entire contract is *bitwise* equivalence with
the legacy ``np.add.at`` kernel — not closeness, identity.  These tests
drive full simulations (all precision levels x both schemes, with and
without AMR regrids) under both scatter modes and compare every state
bit, plus unit-level checks of the plan structure, the geometry cache,
and the scipy-less fallback.
"""

import numpy as np
import pytest

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.clamr.kernels import (
    FaceLists,
    GeometryCache,
    ScatterPlan,
    compute_timestep,
    finite_diff_vectorized,
    scatter_mode,
)
from repro.clamr.mesh import AmrMesh


def _run_states(policy, scheme, nx=16, steps=20, max_level=2):
    """Final (H, U, V) under each scatter mode, same config."""
    out = {}
    for mode in ("plan", "add_at"):
        cfg = DamBreakConfig(nx=nx, ny=nx, max_level=max_level)
        with scatter_mode(mode):
            sim = ClamrSimulation(cfg, policy=policy, scheme=scheme)
            sim.run(steps)
        out[mode] = (sim.state.H.copy(), sim.state.U.copy(), sim.state.V.copy())
    return out


class TestBitIdentity:
    @pytest.mark.parametrize("policy", ["min", "mixed", "full"])
    @pytest.mark.parametrize("scheme", ["rusanov", "muscl"])
    def test_full_simulation_bit_identical(self, policy, scheme):
        # max_level=2 dam break regrids as the wave spreads, so this
        # exercises plan rebuilds across topology generations too
        states = _run_states(policy, scheme)
        for a, b in zip(states["plan"], states["add_at"]):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b), f"{policy}/{scheme}: state bits diverged"

    def test_uniform_mesh_no_regrid(self):
        # the no-AMR case keeps one topology for the whole run
        states = _run_states("mixed", "rusanov", max_level=0, steps=30)
        for a, b in zip(states["plan"], states["add_at"]):
            assert np.array_equal(a, b)

    def test_single_step_identity_from_developed_state(self):
        cfg = DamBreakConfig(nx=24, ny=24, max_level=2)
        sim = ClamrSimulation(cfg, policy="full")
        sim.run(10)
        faces = FaceLists.from_mesh(sim.mesh)
        results = {}
        for mode in ("plan", "add_at"):
            s = sim.state.copy()
            with scatter_mode(mode):
                dt = compute_timestep(sim.mesh, s, cfg.courant)
                finite_diff_vectorized(sim.mesh, s, dt, faces=faces)
            results[mode] = s
        assert np.array_equal(results["plan"].H, results["add_at"].H)
        assert np.array_equal(results["plan"].U, results["add_at"].U)
        assert np.array_equal(results["plan"].V, results["add_at"].V)


class TestScatterPlan:
    def _plan(self, ncells=6):
        low = np.array([0, 1, 2, 0], dtype=np.int64)
        high = np.array([1, 2, 3, 5], dtype=np.int64)
        sizes = np.array([1.0, 0.5, 0.5, 0.25])
        return ScatterPlan(low, high, sizes, ncells), low, high, sizes

    def test_structure(self):
        plan, low, high, sizes = self._plan()
        assert plan.nfaces == 4
        # every face contributes twice: one low entry, one high entry
        assert plan.indptr[-1] == 2 * plan.nfaces
        counts = np.bincount(np.concatenate([low, high]), minlength=plan.ncells)
        assert np.array_equal(np.diff(plan.indptr), counts)

    def test_apply_matches_add_at(self):
        plan, low, high, sizes = self._plan()
        rng = np.random.default_rng(7)
        for dtype in (np.float32, np.float64):
            flux = rng.standard_normal(4).astype(dtype)
            fsz = sizes.astype(dtype)
            a = rng.standard_normal(plan.ncells).astype(dtype)
            b = a.copy()
            plan.apply(a, flux)
            np.add.at(b, low, -flux * fsz)
            np.add.at(b, high, flux * fsz)
            assert np.array_equal(a, b)

    def test_fallback_matches_csr(self, monkeypatch):
        # force the scipy-less branch and compare against the CSR branch
        import repro.clamr.kernels as K

        if K._scipy_sparsetools is None:
            pytest.skip("scipy not available; only the fallback exists")
        plan, low, high, sizes = self._plan()
        flux = np.linspace(-1, 1, 4)
        a = np.zeros(plan.ncells)
        plan.apply(a, flux)
        monkeypatch.setattr(K, "_scipy_sparsetools", None)
        b = np.zeros(plan.ncells)
        plan.apply(b, flux)
        assert np.array_equal(a, b)

    def test_face_lists_memoize_plans(self):
        mesh = AmrMesh.uniform(8, 8)
        faces = FaceLists.from_mesh(mesh)
        p1 = faces.scatter_plans(mesh.ncells)
        p2 = faces.scatter_plans(mesh.ncells)
        assert p1[0] is p2[0] and p1[1] is p2[1]


class TestGeometryCache:
    def test_keyed_by_generation(self):
        geom = GeometryCache()
        m1 = AmrMesh.uniform(4, 4)
        m2 = AmrMesh.uniform(4, 4)
        assert m1.generation != m2.generation
        s1, a1 = geom.geometry(m1, np.dtype(np.float64))
        s1b, a1b = geom.geometry(m1, np.dtype(np.float64))
        assert s1 is s1b and a1 is a1b  # cache hit on same mesh
        s2, _ = geom.geometry(m2, np.dtype(np.float64))
        assert s2 is not s1  # different mesh object, different entry

    def test_workspace_zeroed_buffer_not(self):
        geom = GeometryCache()
        mesh = AmrMesh.uniform(4, 4)
        w = geom.workspace3(mesh, np.dtype(np.float64), slot="t")
        for arr in w:
            arr += 1.0
        w2 = geom.workspace3(mesh, np.dtype(np.float64), slot="t")
        assert all(np.all(arr == 0.0) for arr in w2)  # re-zeroed each call
        buf = geom.buffer(mesh, np.dtype(np.float64), "scratch", (2, 5))
        assert buf.shape == (2, 5)
        buf2 = geom.buffer(mesh, np.dtype(np.float64), "scratch", (2, 5))
        assert buf2 is buf  # reused, contents undefined by contract
        buf3 = geom.buffer(mesh, np.dtype(np.float64), "scratch", (3, 5))
        assert buf3.shape == (3, 5)  # shape change rebuilds

    def test_dtype_casts_distinct(self):
        geom = GeometryCache()
        mesh = AmrMesh.uniform(4, 4)
        s32, _ = geom.geometry(mesh, np.dtype(np.float32))
        s64, _ = geom.geometry(mesh, np.dtype(np.float64))
        assert s32.dtype == np.float32 and s64.dtype == np.float64
        assert np.array_equal(s64, mesh.cell_size())


class TestMassContributions:
    def test_total_mass_uses_shared_contributions(self):
        from repro.clamr.state import ShallowWaterState
        from repro.sums.doubledouble import dd_sum

        rng = np.random.default_rng(3)
        state = ShallowWaterState(
            H=rng.uniform(0.5, 2.0, 32),
            U=np.zeros(32),
            V=np.zeros(32),
        )
        area = rng.uniform(0.1, 1.0, 32)
        contrib = state.mass_contributions(area)
        assert contrib.dtype == np.float64
        assert state.total_mass(area) == float(dd_sum(contrib))

    def test_scatter_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            with scatter_mode("fancy"):
                pass
