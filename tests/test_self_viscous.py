"""Tests for the compact viscous operator (Navier-Stokes terms)."""

import numpy as np
import pytest

from repro.self_.equations import RHO, RHOE, RHOU, RHOV, RHOW, AtmosphereConstants, CompressibleEuler
from repro.self_.mesh import HexMesh
from repro.self_.simulation import SelfSimulation, ThermalBubbleConfig
from repro.self_.viscous import ViscousOperator


def make_solver(nex=2, order=4, lengths=(100.0, 100.0, 100.0), dtype=np.float64):
    mesh = HexMesh(nex=nex, ney=nex, nez=nex, lengths=lengths, order=order)
    c = AtmosphereConstants()
    _, _, z = mesh.node_coordinates()
    theta0 = 300.0
    exner = 1.0 - c.gravity * z / (c.cp * theta0)
    p_bar = c.p0 * exner ** (c.cp / c.gas_constant)
    rho_bar = c.p0 * exner ** (c.cv / c.gas_constant) / (c.gas_constant * theta0)
    return mesh, CompressibleEuler(mesh, np.dtype(dtype), c, rho_bar, p_bar)


class TestConstruction:
    def test_kappa_from_prandtl(self):
        _, solver = make_solver()
        op = ViscousOperator(solver, mu=1.8e-5, prandtl=0.72)
        assert float(op.kappa) == pytest.approx(1.8e-5 * 1004.5 / 0.72, rel=1e-6)

    def test_validation(self):
        _, solver = make_solver()
        with pytest.raises(ValueError):
            ViscousOperator(solver, mu=-1.0)
        with pytest.raises(ValueError):
            ViscousOperator(solver, mu=1.0, prandtl=0.0)
        with pytest.raises(ValueError):
            ViscousOperator(solver, mu=1.0, penalty=-1.0)


class TestOperator:
    def test_rest_state_untouched(self):
        """Uniform temperature, zero velocity: all viscous terms vanish.

        (The hydrostatic background has a z-varying temperature, so we use
        an isothermal constant state instead.)"""
        mesh, solver = make_solver()
        n = mesh.npoints
        U = np.zeros((mesh.nelem, 5, n, n, n))
        U[:, RHO] = 1.0
        U[:, RHOE] = 1.0e5 / (solver.constants.gamma - 1.0)
        out = np.zeros_like(U)
        ViscousOperator(solver, mu=1e-3).add_rhs(U, out)
        assert np.abs(out).max() < 1e-8

    def test_shear_layer_momentum_diffuses(self):
        """u(z) shear: tau_xz = mu du/dz; d(rho u)/dt = mu d2u/dz2."""
        mesh, solver = make_solver(nex=2, order=5)
        n = mesh.npoints
        _, _, z = mesh.node_coordinates()
        U = np.zeros((mesh.nelem, 5, n, n, n))
        U[:, RHO] = 1.0
        Lz = 100.0
        u_profile = np.sin(2 * np.pi * z / Lz)
        U[:, RHOU] = u_profile
        U[:, RHOE] = 1.0e5 / (solver.constants.gamma - 1.0) + 0.5 * u_profile**2
        mu = 1.0
        out = np.zeros_like(U)
        ViscousOperator(solver, mu=mu, penalty=0.0).add_rhs(U, out)
        expected = -mu * (2 * np.pi / Lz) ** 2 * u_profile
        # the compact operator is one-sided at element-edge nodes; interior
        # nodes match the analytic Laplacian
        np.testing.assert_allclose(
            out[:, RHOU][:, :, :, 1:-1], expected[:, :, :, 1:-1], rtol=0.05, atol=3e-5
        )

    def test_heat_conduction_smooths_temperature(self):
        """A hot stripe's energy must diffuse: RHOE RHS opposes the bump."""
        mesh, solver = make_solver(nex=2, order=5)
        n = mesh.npoints
        x, _, _ = mesh.node_coordinates()
        U = np.zeros((mesh.nelem, 5, n, n, n))
        U[:, RHO] = 1.0
        T = 300.0 + 10.0 * np.sin(2 * np.pi * x / 100.0)
        p = 1.0 * solver.constants.gas_constant * T
        U[:, RHOE] = p / (solver.constants.gamma - 1.0)
        out = np.zeros_like(U)
        ViscousOperator(solver, mu=1e-2, penalty=0.0).add_rhs(U, out)
        # energy tendency anti-correlates with the temperature bump
        corr = float(np.sum(out[:, RHOE] * (T - 300.0)))
        assert corr < 0.0

    def test_penalty_is_conservative(self):
        """The interface jump terms cancel globally (quadrature-weighted)."""
        mesh, solver = make_solver(nex=3, order=3)
        n = mesh.npoints
        rng = np.random.default_rng(0)
        U = np.zeros((mesh.nelem, 5, n, n, n))
        U[:, RHO] = 1.0 + 0.01 * rng.random((mesh.nelem, n, n, n))
        U[:, RHOU] = 0.1 * rng.standard_normal((mesh.nelem, n, n, n))
        U[:, RHOE] = 1.0e5 / (solver.constants.gamma - 1.0)
        op_with = ViscousOperator(solver, mu=1e-2, penalty=5.0)
        op_without = ViscousOperator(solver, mu=1e-2, penalty=0.0)
        a = np.zeros_like(U)
        b = np.zeros_like(U)
        op_with.add_rhs(U, a)
        op_without.add_rhs(U, b)
        penalty_part = a - b
        w = solver.basis.weights
        w3 = w[:, None, None] * w[None, :, None] * w[None, None, :]
        for slot in (RHOU, RHOV, RHOW):
            total = float((penalty_part[:, slot] * w3).sum())
            scale = float(np.abs(penalty_part[:, slot]).max() * w3.sum() * mesh.nelem) + 1e-30
            assert abs(total) <= 1e-10 * scale

    def test_shape_mismatch_rejected(self):
        mesh, solver = make_solver()
        op = ViscousOperator(solver, mu=1e-3)
        n = mesh.npoints
        U = np.zeros((mesh.nelem, 5, n, n, n))
        with pytest.raises(ValueError):
            op.add_rhs(U, np.zeros((1, 5, n, n, n)))


class TestSimulationIntegration:
    def test_viscous_bubble_runs_and_differs(self):
        """The viscous path is active (fields deviate from inviscid) and
        stable.  (Physical damping of the km-scale bubble needs unphysical
        μ and tighter timesteps; the operator's diffusion physics is
        validated directly in TestOperator.)"""
        base = ThermalBubbleConfig(nex=3, ney=3, nez=3, order=3)
        viscous = ThermalBubbleConfig(nex=3, ney=3, nez=3, order=3, viscosity=10.0)
        r_base = SelfSimulation(base, precision="double").run(60)
        r_visc = SelfSimulation(viscous, precision="double").run(60)
        assert np.isfinite(r_visc.anomaly_field).all()
        assert not np.array_equal(r_visc.anomaly_field, r_base.anomaly_field)
        # and the deviation is a perturbation, not an instability
        assert abs(r_visc.max_vertical_velocity - r_base.max_vertical_velocity) < 0.5 * (
            r_base.max_vertical_velocity + 1e-12
        )

    def test_single_precision_viscous_path(self):
        cfg = ThermalBubbleConfig(nex=3, ney=3, nez=3, order=3, viscosity=1.0)
        res = SelfSimulation(cfg, precision="single").run(20)
        assert np.isfinite(res.anomaly_field).all()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ThermalBubbleConfig(viscosity=-1.0)
        with pytest.raises(ValueError):
            ThermalBubbleConfig(prandtl=0.0)
