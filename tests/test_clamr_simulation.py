"""Integration tests for the CLAMR dam-break simulation."""

import numpy as np
import pytest

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.precision.analysis import asymmetry_signature, difference_metrics

SMALL = DamBreakConfig(nx=16, ny=16, max_level=1)


class TestBasicRun:
    def test_runs_and_reports(self):
        sim = ClamrSimulation(SMALL, policy="full")
        res = sim.run(30)
        assert res.steps == 30
        assert res.final_time > 0
        assert res.field.shape == (32, 32)
        assert res.slice_y.shape == (32,)
        assert res.slice_precise.dtype == np.float64
        assert res.profile.flops > 0
        assert res.checkpoint_bytes > 0

    def test_stability(self):
        sim = ClamrSimulation(SMALL, policy="full")
        sim.run(200)
        H = sim.state.H
        assert np.isfinite(H).all()
        assert H.min() > 0.2 and H.max() < 2.5

    def test_mass_conserved_full_precision(self):
        res = ClamrSimulation(SMALL, policy="full").run(100)
        assert res.mass_drift < 1e-13

    def test_mass_drift_small_at_min_precision(self):
        res = ClamrSimulation(SMALL, policy="min").run(100)
        assert res.mass_drift < 1e-5  # float32 storage rounding only

    def test_amr_activity(self):
        sim = ClamrSimulation(DamBreakConfig(nx=16, ny=16, max_level=2), policy="full")
        res = sim.run(60)
        assert max(res.ncells_history) > 16 * 16  # refinement happened
        assert sim.mesh.check_balance()

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            ClamrSimulation(SMALL).run(0)

    def test_no_amr_mode(self):
        cfg = DamBreakConfig(nx=16, ny=16, max_level=0, start_refined=False)
        sim = ClamrSimulation(cfg, policy="full")
        res = sim.run(20)
        assert sim.mesh.ncells == 256
        assert len(set(res.ncells_history)) == 1


class TestPrecisionLevels:
    @pytest.fixture(scope="class")
    def runs(self):
        cfg = DamBreakConfig(nx=32, ny=32, max_level=2)
        return {
            level: ClamrSimulation(cfg, policy=level).run(150)
            for level in ("min", "mixed", "full")
        }

    def test_meshes_identical_across_precisions(self, runs):
        counts = {lvl: r.ncells_history[-1] for lvl, r in runs.items()}
        assert len(set(counts.values())) == 1

    def test_solutions_close_across_precisions(self, runs):
        d = difference_metrics(runs["full"].slice_precise, runs["min"].slice_precise)
        assert d.within(4.0)  # paper: 5-6 orders at 1000 steps; short run is cleaner

    def test_state_dtypes(self, runs):
        assert runs["min"].policy.state_dtype == np.float32
        assert runs["full"].policy.state_dtype == np.float64

    def test_checkpoint_ratio(self, runs):
        assert runs["min"].checkpoint_bytes / runs["full"].checkpoint_bytes == pytest.approx(
            2 / 3, abs=0.01
        )

    def test_memory_ratio(self, runs):
        assert runs["min"].state_nbytes * 2 == runs["full"].state_nbytes

    def test_full_precision_asymmetry_at_rounding_floor(self, runs):
        sig = asymmetry_signature(runs["full"].slice_precise)
        assert sig.relative_max < 1e-10

    def test_reduced_precision_asymmetry_amplified(self, runs):
        sig_min = asymmetry_signature(runs["min"].slice_precise)
        sig_full = asymmetry_signature(runs["full"].slice_precise)
        assert sig_min.max_abs >= sig_full.max_abs
        # but still bounded well below the solution (paper: factor 1e-6)
        assert sig_min.relative_max < 1e-4


class TestRunToTime:
    def test_reaches_target(self):
        sim = ClamrSimulation(SMALL, policy="full")
        first = sim.run(10)
        target = first.final_time * 3
        sim.run_to_time(target)
        assert sim.time >= target

    def test_rejects_past_target(self):
        sim = ClamrSimulation(SMALL, policy="full")
        sim.run(5)
        with pytest.raises(ValueError):
            sim.run_to_time(sim.time / 2)


class TestDeterminism:
    def test_identical_runs_bitwise(self):
        a = ClamrSimulation(SMALL, policy="min").run(50)
        b = ClamrSimulation(SMALL, policy="min").run(50)
        np.testing.assert_array_equal(a.field, b.field)
        assert a.mass_history == b.mass_history


class TestConfigValidation:
    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            DamBreakConfig(nx=2, ny=2)

    def test_column_must_be_above_base(self):
        with pytest.raises(ValueError):
            DamBreakConfig(column_height=0.5, base_height=1.0)

    def test_radius_fraction_range(self):
        with pytest.raises(ValueError):
            DamBreakConfig(column_radius_fraction=0.7)

    def test_regrid_interval_positive(self):
        with pytest.raises(ValueError):
            DamBreakConfig(regrid_interval=0)
