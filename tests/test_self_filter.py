"""Unit tests for the modal spectral filter."""

import numpy as np
import pytest

from repro.self_.basis import NodalBasis
from repro.self_.filter import apply_filter_3d, filter_sigma, modal_filter_matrix


class TestSigma:
    def test_low_modes_untouched(self):
        s = filter_sigma(order=8, cutoff=5)
        np.testing.assert_array_equal(s[:6], 1.0)

    def test_top_mode_damped_to_machine_eps(self):
        s = filter_sigma(order=8, cutoff=5, strength=36.0)
        assert s[-1] == pytest.approx(np.exp(-36.0))

    def test_monotone_rolloff(self):
        s = filter_sigma(order=10, cutoff=3)
        assert (np.diff(s[3:]) <= 0).all()

    def test_cutoff_at_order_is_identity(self):
        s = filter_sigma(order=6, cutoff=6)
        np.testing.assert_array_equal(s, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            filter_sigma(4, cutoff=5)
        with pytest.raises(ValueError):
            filter_sigma(4, cutoff=2, strength=-1.0)
        with pytest.raises(ValueError):
            filter_sigma(4, cutoff=2, exponent=3)


class TestFilterMatrix:
    def test_preserves_low_degree_polynomials(self):
        order = 7
        F = modal_filter_matrix(order, cutoff=4)
        x = NodalBasis.gll(order).nodes
        for deg in range(4):
            f = x**deg
            np.testing.assert_allclose(F @ f, f, atol=1e-12)

    def test_damps_highest_mode(self):
        order = 6
        b = NodalBasis.gll(order)
        F = modal_filter_matrix(order, cutoff=2)
        # construct a pure top-mode field
        modal = np.zeros(order + 1)
        modal[-1] = 1.0
        nodal = b.V @ modal
        filtered = F @ nodal
        assert np.abs(b.Vinv @ filtered)[-1] < 1e-12

    def test_idempotent_on_kept_modes(self):
        order = 5
        F = modal_filter_matrix(order, cutoff=3)
        x = NodalBasis.gll(order).nodes
        f = 1.0 + x + x**2
        once = F @ f
        twice = F @ once
        np.testing.assert_allclose(once, twice, atol=1e-13)

    def test_default_cutoff_two_thirds(self):
        F = modal_filter_matrix(9)  # cutoff = 6
        x = NodalBasis.gll(9).nodes
        f = x**6
        np.testing.assert_allclose(F @ f, f, atol=1e-11)


class TestApply3D:
    def test_constant_field_unchanged(self):
        F = modal_filter_matrix(3, cutoff=1)
        field = np.ones((2, 5, 4, 4, 4))
        out = apply_filter_3d(field, F)
        np.testing.assert_allclose(out, field, atol=1e-13)

    def test_separable_polynomial_preserved(self):
        order = 4
        F = modal_filter_matrix(order, cutoff=2)
        x = NodalBasis.gll(order).nodes
        n = order + 1
        X = x[:, None, None] + np.zeros((n, n, n))
        Y = x[None, :, None] + np.zeros((n, n, n))
        field = (1 + X) * (1 + Y**2)  # degrees (1, 2, 0) all <= cutoff
        out = apply_filter_3d(field[None, ...], F)[0]
        np.testing.assert_allclose(out, field, atol=1e-12)

    def test_shape_validation(self):
        F = modal_filter_matrix(3)
        with pytest.raises(ValueError):
            apply_filter_3d(np.ones((2, 5, 3, 4, 4)), F)
        with pytest.raises(ValueError):
            apply_filter_3d(np.ones((4, 4, 4)), np.ones((3, 4)))

    def test_reduces_high_frequency_energy(self):
        order = 6
        F = modal_filter_matrix(order, cutoff=2)
        rng = np.random.default_rng(1)
        field = rng.normal(size=(3, 7, 7, 7))
        out = apply_filter_3d(field, F)
        assert np.linalg.norm(out) < np.linalg.norm(field)
