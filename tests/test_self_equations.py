"""Unit tests for the compressible-Euler DGSEM right-hand side."""

import numpy as np
import pytest

from repro.self_.equations import RHO, RHOE, RHOU, RHOV, RHOW, AtmosphereConstants, CompressibleEuler
from repro.self_.mesh import HexMesh


def make_solver(nex=2, ney=2, nez=2, order=3, dtype=np.float64, lengths=(100.0, 100.0, 100.0)):
    mesh = HexMesh(nex=nex, ney=ney, nez=nez, lengths=lengths, order=order)
    c = AtmosphereConstants()
    _, _, z = mesh.node_coordinates()
    theta0 = 300.0
    exner = 1.0 - c.gravity * z / (c.cp * theta0)
    p_bar = c.p0 * exner ** (c.cp / c.gas_constant)
    rho_bar = c.p0 * exner ** (c.cv / c.gas_constant) / (c.gas_constant * theta0)
    solver = CompressibleEuler(mesh, np.dtype(dtype), c, rho_bar, p_bar)
    return mesh, solver


class TestConstants:
    def test_gamma(self):
        c = AtmosphereConstants()
        assert c.gamma == pytest.approx(1.4, abs=0.01)
        assert c.cv == pytest.approx(717.5)


class TestPrimitives:
    def test_roundtrip(self):
        mesh, solver = make_solver()
        U = solver.background_state()
        rho, u, v, w, p = solver.primitives(U)
        np.testing.assert_allclose(rho, solver.rho_bar)
        np.testing.assert_allclose(u, 0.0)
        np.testing.assert_allclose(p, solver.p_bar, rtol=1e-12)

    def test_sound_speed_physical(self):
        mesh, solver = make_solver()
        rho, _, _, _, p = solver.primitives(solver.background_state())
        c = solver.sound_speed(rho, p)
        assert 300.0 < c.min() < c.max() < 360.0  # ~347 m/s near 300 K

    def test_single_precision_rejects_mismatched_state(self):
        mesh, solver = make_solver(dtype=np.float32)
        U = solver.background_state().astype(np.float64)
        with pytest.raises(ValueError, match="dtype"):
            solver.rhs(U)

    def test_bad_shape_rejected(self):
        mesh, solver = make_solver()
        with pytest.raises(ValueError, match="shape"):
            solver.rhs(np.zeros((1, 5, 2, 2, 2), dtype=np.float64))

    def test_unsupported_dtype(self):
        mesh = HexMesh(nex=2, ney=2, nez=2, lengths=(1, 1, 1), order=2)
        with pytest.raises(ValueError, match="single or double"):
            make_solver(dtype=np.float16)


class TestWellBalance:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_resting_atmosphere_has_zero_rhs(self, dtype):
        """The perturbation form is discretely well-balanced: exact zero."""
        mesh, solver = make_solver(dtype=dtype, nez=3, lengths=(500.0, 500.0, 1000.0))
        U = solver.background_state()
        rhs = solver.rhs(U)
        assert np.abs(rhs).max() == 0.0


class TestConservation:
    def _perturbed(self, solver, amplitude=0.01):
        U = solver.background_state()
        rng = np.random.default_rng(0)
        U[:, RHO] *= 1.0 + amplitude * rng.random(U[:, RHO].shape)
        return U

    def test_interior_mass_flux_telescopes(self):
        """Total d(mass)/dt integrates to zero (walls pass no mass)."""
        mesh, solver = make_solver(order=4)
        U = self._perturbed(solver)
        rhs = solver.rhs(U)
        w = solver.basis.weights
        w3 = w[:, None, None] * w[None, :, None] * w[None, None, :]
        mx, my, mz = solver.metric
        cell_jac = 1.0 / (mx * my * mz)  # (dx/2)(dy/2)(dz/2)
        total = float((rhs[:, RHO] * w3).sum() * cell_jac)
        scale = float(np.abs(rhs[:, RHO]).max() * w3.sum() * cell_jac * mesh.nelem)
        assert abs(total) <= 1e-12 * max(1.0, scale)

    def test_energy_flux_telescopes_too(self):
        mesh, solver = make_solver(order=3)
        U = self._perturbed(solver)
        rhs = solver.rhs(U)
        w = solver.basis.weights
        w3 = w[:, None, None] * w[None, :, None] * w[None, None, :]
        # energy has the gravity source -g rho w; with w=0 it vanishes, so
        # the integral must telescope like mass
        total = float((rhs[:, RHOE] * w3).sum())
        scale = float(np.abs(rhs[:, RHOE]).max() * w3.sum() * mesh.nelem) + 1e-30
        assert abs(total) <= 1e-10 * scale


class TestGravitySource:
    def test_heavy_parcel_sinks(self):
        mesh, solver = make_solver()
        U = solver.background_state()
        # uniformly 1% denser than hydrostatic: net downward force
        U[:, RHO] = solver.rho_bar * 1.01
        rhs = solver.rhs(U)
        # interior nodes feel -g * rho' directly
        interior = rhs[:, RHOW][:, 1:-1, 1:-1, 1:-1]
        assert interior.max() < 0.0

    def test_light_parcel_rises(self):
        mesh, solver = make_solver()
        U = solver.background_state()
        U[:, RHO] = solver.rho_bar * 0.99
        rhs = solver.rhs(U)
        interior = rhs[:, RHOW][:, 1:-1, 1:-1, 1:-1]
        assert interior.min() > 0.0


class TestTimestep:
    def test_stable_dt_positive_and_sane(self):
        mesh, solver = make_solver(lengths=(1000.0, 1000.0, 1000.0))
        dt = solver.stable_dt(solver.background_state())
        # ~1000m/2 elements/(order 3) at c~347 m/s: small fraction of a second
        assert 1e-4 < dt < 1.0

    def test_dt_scales_inverse_with_resolution(self):
        _, coarse = make_solver(nex=2, ney=2, nez=2)
        _, fine = make_solver(nex=4, ney=4, nez=4)
        dt_c = coarse.stable_dt(coarse.background_state())
        dt_f = fine.stable_dt(fine.background_state())
        assert dt_f == pytest.approx(dt_c / 2, rel=0.05)

    def test_courant_validation(self):
        mesh, solver = make_solver()
        with pytest.raises(ValueError):
            solver.stable_dt(solver.background_state(), courant=0.0)

    def test_velocity_increases_wave_speed(self):
        mesh, solver = make_solver()
        U = solver.background_state()
        base = solver.max_wave_speed_metric(U)
        U[:, RHOU] = U[:, RHO] * 50.0
        assert solver.max_wave_speed_metric(U) > base


class TestBackgroundValidation:
    def test_wrong_background_shape_rejected(self):
        mesh = HexMesh(nex=2, ney=2, nez=2, lengths=(1, 1, 1), order=2)
        bad = np.ones((1, 3, 3, 3))
        with pytest.raises(ValueError, match="background"):
            CompressibleEuler(mesh, np.dtype(np.float64), AtmosphereConstants(), bad, bad)
