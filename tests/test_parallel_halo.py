"""Tests for distributed (halo-exchange) CLAMR stepping."""

import numpy as np
import pytest

from repro.clamr.mesh import AmrMesh
from repro.clamr.state import ShallowWaterState
from repro.parallel.decomposition import block_partition, morton_partition, stripe_partition
from repro.parallel.halo import DistributedClamr
from repro.precision.policy import FULL_PRECISION, MIN_PRECISION


def setup(nx=16, policy=FULL_PRECISION):
    mesh = AmrMesh.uniform(nx, nx, coarse_size=1.0 / nx)
    x, y = mesh.cell_centers()
    H = 1.0 + 0.4 * np.exp(-((x - 0.5) ** 2 + (y - 0.5) ** 2) * 40.0)
    state = ShallowWaterState(H=H, U=np.zeros_like(H), V=np.zeros_like(H), policy=policy)
    return mesh, state


class TestCorrectness:
    def test_single_rank_runs(self):
        mesh, state = setup()
        d = DistributedClamr(mesh, state, stripe_partition(mesh.ncells, 1))
        d.run(10)
        assert np.isfinite(state.H).all()

    @pytest.mark.parametrize("nranks", [2, 4, 7])
    def test_matches_serial_to_rounding(self, nranks):
        mesh_a, state_a = setup()
        serial = DistributedClamr(mesh_a, state_a, stripe_partition(mesh_a.ncells, 1))
        mesh_b, state_b = setup()
        parallel = DistributedClamr(mesh_b, state_b, stripe_partition(mesh_b.ncells, nranks))
        for _ in range(20):
            dt_a = serial.step()
            dt_b = parallel.step()
            assert dt_a == dt_b  # the Allreduce(min) agrees exactly
        np.testing.assert_allclose(state_a.H, state_b.H, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("partition", ["stripe", "block", "morton"])
    def test_mass_conserved_any_partition(self, partition):
        mesh, state = setup()
        if partition == "stripe":
            dec = stripe_partition(mesh.ncells, 5)
        elif partition == "block":
            dec = block_partition(mesh, 5)
        else:
            dec = morton_partition(mesh, 5)
        d = DistributedClamr(mesh, state, dec)
        m0 = state.total_mass(mesh.cell_area())
        d.run(30)
        assert state.total_mass(mesh.cell_area()) == pytest.approx(m0, rel=1e-13)

    def test_decomposition_size_mismatch_rejected(self):
        mesh, state = setup()
        with pytest.raises(ValueError, match="covers"):
            DistributedClamr(mesh, state, stripe_partition(10, 2))


class TestReproducibility:
    def test_bitwise_identical_across_rank_counts(self):
        """Order-preserving face masking makes the distributed run
        bitwise reproducible for ANY rank count — the fixed-accumulation-
        order remedy from the §III-C literature, demonstrated."""
        results = {}
        for nranks in (1, 4, 16):
            mesh, state = setup()
            DistributedClamr(mesh, state, stripe_partition(mesh.ncells, nranks)).run(40)
            results[nranks] = state.H.copy()
        np.testing.assert_array_equal(results[1], results[4])
        np.testing.assert_array_equal(results[1], results[16])

    def test_face_permutation_alone_cannot_break_bits(self):
        """Each cell receives at most two contributions per axis; two-term
        sums commute, so permuting the face lists is bit-neutral."""
        mesh_a, state_a = setup()
        DistributedClamr(mesh_a, state_a, stripe_partition(mesh_a.ncells, 4)).run(40)
        mesh_b, state_b = setup()
        DistributedClamr(
            mesh_b, state_b, stripe_partition(mesh_b.ncells, 4), face_order=7
        ).run(40)
        np.testing.assert_array_equal(state_a.H, state_b.H)

    def test_axis_phase_order_breaks_bits(self):
        """Reassociating (x then y) vs (y then x) per cell drifts at
        rounding level — the degree of freedom that makes real MPI runs
        irreproducible."""
        mesh_a, state_a = setup()
        DistributedClamr(mesh_a, state_a, stripe_partition(mesh_a.ncells, 4)).run(40)
        mesh_b, state_b = setup()
        DistributedClamr(
            mesh_b, state_b, stripe_partition(mesh_b.ncells, 4), axis_order=("y", "x")
        ).run(40)
        drift = float(np.abs(state_a.H - state_b.H).max())
        assert drift > 0.0  # the bits really change...
        assert drift < 1e-11  # ...but only at rounding level

    def test_bad_axis_order_rejected(self):
        mesh, state = setup()
        with pytest.raises(ValueError, match="axis_order"):
            DistributedClamr(mesh, state, stripe_partition(mesh.ncells, 2), axis_order=("x", "x"))

    def test_float32_reassociation_noise_larger(self):
        """At reduced precision the same reorder costs ~9 more digits —
        decomposition noise and precision noise compound."""

        def drift(policy):
            fields = []
            for axes in (("x", "y"), ("y", "x")):
                mesh, state = setup(policy=policy)
                DistributedClamr(
                    mesh, state, stripe_partition(mesh.ncells, 4), axis_order=axes
                ).run(40)
                fields.append(state.H.astype(np.float64).copy())
            return float(np.abs(fields[0] - fields[1]).max())

        d64 = drift(FULL_PRECISION)
        d32 = drift(MIN_PRECISION)
        assert d64 > 0.0
        assert d32 > 100 * d64
