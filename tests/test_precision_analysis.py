"""Unit + property tests for repro.precision.analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.precision.analysis import (
    asymmetry_signature,
    difference_metrics,
    digits_of_agreement,
    line_out,
    mirror_asymmetry,
)


class TestLineOut:
    def test_2d_axis0_is_vertical_cut(self):
        field = np.arange(12.0).reshape(3, 4)
        cut = line_out(field, axis=0)
        np.testing.assert_array_equal(cut, field[:, 2])

    def test_2d_axis1_is_horizontal_cut(self):
        field = np.arange(12.0).reshape(3, 4)
        cut = line_out(field, axis=1)
        np.testing.assert_array_equal(cut, field[1, :])

    def test_3d_center(self):
        field = np.arange(27.0).reshape(3, 3, 3)
        cut = line_out(field, axis=2)
        np.testing.assert_array_equal(cut, field[1, 1, :])

    def test_explicit_index(self):
        field = np.arange(16.0).reshape(4, 4)
        cut = line_out(field, axis=0, index=0)
        np.testing.assert_array_equal(cut, field[:, 0])

    def test_output_is_graphics_precision(self):
        assert line_out(np.zeros((4, 4)), axis=0).dtype == np.float32

    def test_negative_axis(self):
        field = np.arange(12.0).reshape(3, 4)
        np.testing.assert_array_equal(line_out(field, axis=-1), field[1, :])

    def test_bad_ndim_raises(self):
        with pytest.raises(ValueError):
            line_out(np.zeros((2, 2, 2, 2)))

    def test_bad_axis_raises(self):
        with pytest.raises(ValueError):
            line_out(np.zeros((4, 4)), axis=5)

    def test_bad_index_raises(self):
        with pytest.raises(ValueError):
            line_out(np.zeros((4, 4)), axis=0, index=10)


class TestMirrorAsymmetry:
    def test_symmetric_input_gives_zero(self):
        v = np.array([1.0, 2.0, 3.0, 2.0, 1.0])
        np.testing.assert_array_equal(mirror_asymmetry(v), [0.0, 0.0])

    def test_even_length(self):
        v = np.array([1.0, 2.0, 2.0, 1.5])
        np.testing.assert_allclose(mirror_asymmetry(v), [-0.5, 0.0])

    def test_antisymmetric_input(self):
        v = np.array([-2.0, -1.0, 0.0, 1.0, 2.0])
        np.testing.assert_allclose(mirror_asymmetry(v), [-4.0, -2.0])

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            mirror_asymmetry(np.zeros((3, 3)))

    @given(
        arrays(np.float64, st.integers(2, 64), elements=st.floats(-1e6, 1e6))
    )
    @settings(max_examples=100, deadline=None)
    def test_mirroring_input_flips_sign(self, v):
        a = mirror_asymmetry(v)
        b = mirror_asymmetry(v[::-1])
        np.testing.assert_allclose(a, -b[: a.size][::-1] if False else -b, rtol=0, atol=0)


class TestAsymmetrySignature:
    def test_symmetric_signature(self):
        sig = asymmetry_signature(np.array([1.0, 2.0, 1.0]))
        assert sig.max_abs == 0.0
        assert sig.rms == 0.0
        assert sig.bias_fraction == 0.5  # no nonzero samples -> neutral

    def test_positive_bias_detected(self):
        v = np.array([2.0, 2.0, 0.0, 1.0, 1.0])  # left half larger
        sig = asymmetry_signature(v)
        assert sig.bias_fraction == 1.0
        assert sig.max_abs == 1.0
        assert sig.relative_max == 0.5

    def test_relative_max_zero_scale(self):
        sig = asymmetry_signature(np.zeros(6))
        assert sig.relative_max == 0.0


class TestDifferenceMetrics:
    def test_identical_inputs(self):
        d = difference_metrics(np.ones(8), np.ones(8))
        assert d.max_abs == 0.0
        assert d.orders_below_solution == np.inf
        assert d.within(6.0)

    def test_known_difference(self):
        a = np.full(4, 100.0)
        b = a + 1e-4
        d = difference_metrics(a, b)
        assert d.max_abs == pytest.approx(1e-4)
        assert d.solution_scale == 100.0
        assert d.orders_below_solution == pytest.approx(6.0, abs=1e-6)
        assert d.within(5.9) and not d.within(6.1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            difference_metrics(np.ones(3), np.ones(4))

    def test_zero_reference_nonzero_diff(self):
        d = difference_metrics(np.zeros(3), np.ones(3))
        assert d.orders_below_solution == -np.inf

    @given(
        arrays(np.float64, 16, elements=st.floats(-1e3, 1e3)),
        arrays(np.float64, 16, elements=st.floats(-1e3, 1e3)),
    )
    @settings(max_examples=100, deadline=None)
    def test_rms_at_most_max(self, a, b):
        d = difference_metrics(a, b)
        assert d.rms <= d.max_abs + 1e-12


class TestDigitsOfAgreement:
    def test_identical_is_17(self):
        assert digits_of_agreement(np.ones(5), np.ones(5)) == 17.0

    def test_seven_digits(self):
        a = np.full(9, 1.0)
        b = a * (1 + 1e-7)
        assert digits_of_agreement(a, b) == pytest.approx(7.0, abs=0.01)

    def test_total_disagreement_on_zero_reference(self):
        assert digits_of_agreement(np.zeros(3), np.ones(3)) == 0.0

    def test_empty_arrays(self):
        assert digits_of_agreement(np.array([]), np.array([])) == 17.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            digits_of_agreement(np.ones(2), np.ones(3))

    def test_median_robust_to_outlier(self):
        a = np.full(11, 1.0)
        b = a.copy()
        b[0] = 2.0  # one element disagrees wildly
        assert digits_of_agreement(a, b) == 17.0
