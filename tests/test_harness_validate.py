"""End-to-end validation-suite tests."""

import pytest

from repro.harness.validate import SCALES, validate_reproduction


class TestValidate:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            validate_reproduction("huge")

    def test_scales_registered(self):
        assert set(SCALES) == {"quick", "bench"}

    @pytest.mark.slow
    def test_all_claims_reproduce_at_quick_scale(self):
        checks = validate_reproduction("quick")
        failed = [c for c in checks if not c.passed]
        assert not failed, "\n".join(str(c) for c in failed)
        # coverage: every table and figure contributes at least one check
        names = {c.name.split("/")[0] for c in checks}
        assert {f"table{i}" for i in range(1, 8)} <= names
        assert {f"fig{i}" for i in range(1, 6)} <= names

    @pytest.mark.slow
    def test_validate_cli_exit_code(self, capsys):
        from repro.cli import main

        assert main(["validate", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "claims reproduced" in out
