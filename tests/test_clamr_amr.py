"""Unit tests for AMR flagging, balance, and regrid."""

import numpy as np
import pytest

from repro.clamr.amr import enforce_balance, refinement_flags, regrid
from repro.clamr.mesh import AmrMesh
from repro.clamr.state import ShallowWaterState
from repro.precision.policy import FULL_PRECISION, MIN_PRECISION


def state_with_H(mesh, H, policy=FULL_PRECISION):
    H = np.asarray(H, dtype=np.float64)
    return ShallowWaterState(H=H, U=np.zeros_like(H), V=np.zeros_like(H), policy=policy)


class TestFlags:
    def test_flat_field_coarsens(self):
        m = AmrMesh.uniform(4, 4, max_level=1, level=1)
        s = state_with_H(m, np.ones(m.ncells))
        flags = refinement_flags(m, s)
        assert (flags == -1).all()

    def test_flat_field_at_level_zero_keeps(self):
        m = AmrMesh.uniform(4, 4, max_level=1)
        s = state_with_H(m, np.ones(m.ncells))
        assert (refinement_flags(m, s) == 0).all()

    def test_jump_refines_both_sides(self):
        m = AmrMesh.uniform(8, 1, max_level=1)
        H = np.ones(8)
        H[4:] = 2.0
        s = state_with_H(m, H)
        flags = refinement_flags(m, s)
        assert flags[3] == 1 and flags[4] == 1

    def test_max_level_cells_never_flagged_up(self):
        m = AmrMesh.uniform(4, 1, max_level=1, level=1)
        H = np.ones(m.ncells)
        H[::2] = 5.0
        flags = refinement_flags(m, state_with_H(m, H))
        assert (flags <= 0).all()

    def test_threshold_ordering_validated(self):
        m = AmrMesh.uniform(2, 2)
        s = state_with_H(m, np.ones(4))
        with pytest.raises(ValueError):
            refinement_flags(m, s, refine_threshold=0.01, coarsen_threshold=0.02)

    def test_decisions_quantized_against_noise(self):
        """Rounding-level H differences must not change the flags."""
        m = AmrMesh.uniform(8, 8, max_level=1)
        rng = np.random.default_rng(0)
        H = 1.0 + 0.1 * rng.random(m.ncells)
        a = refinement_flags(m, state_with_H(m, H))
        noisy = H * (1.0 + rng.uniform(-1e-7, 1e-7, m.ncells))
        b = refinement_flags(m, state_with_H(m, noisy))
        np.testing.assert_array_equal(a, b)

    def test_flags_mirror_symmetric(self):
        m = AmrMesh.uniform(8, 8, max_level=1)
        x, y = m.cell_centers()
        H = 1.0 + np.exp(-((x - 4.0) ** 2 + (y - 4.0) ** 2))
        flags = refinement_flags(m, state_with_H(m, H))
        grid = flags.reshape(8, 8)  # row-major j, i for uniform construction
        np.testing.assert_array_equal(grid, grid[::-1, :])
        np.testing.assert_array_equal(grid, grid[:, ::-1])


class TestBalance:
    def test_refinement_propagates(self):
        # 4x1: refine only cell 0 twice would violate 2:1 against cell 1
        m = AmrMesh.uniform(4, 1, max_level=2)
        flags = np.array([1, 0, 0, 0], dtype=np.int8)
        out = enforce_balance(m, flags)
        np.testing.assert_array_equal(out, flags)  # one level apart: fine
        # now from a mesh where cell 0 is already level 1 and others level 0:
        m2 = AmrMesh(
            nx=4, ny=1, max_level=2,
            i=[0, 1, 0, 1, 1, 2, 3], j=[0, 0, 1, 1, 0, 0, 0],
            level=[1, 1, 1, 1, 0, 0, 0],
        )
        flags2 = np.zeros(7, dtype=np.int8)
        flags2[1] = 1  # refine fine cell touching the coarse neighbor
        out2 = enforce_balance(m2, flags2)
        # the coarse right neighbor (index 4) must be forced to refine
        assert out2[4] == 1

    def test_coarsen_cancelled_near_refinement(self):
        m2 = AmrMesh(
            nx=4, ny=1, max_level=2,
            i=[0, 1, 0, 1, 1, 2, 3], j=[0, 0, 1, 1, 0, 0, 0],
            level=[1, 1, 1, 1, 0, 0, 0],
        )
        flags = np.zeros(7, dtype=np.int8)
        flags[1] = 1   # level-1 cell refines to level 2
        flags[4] = -1  # adjacent level-0 cell wants to coarsen: illegal
        out = enforce_balance(m2, flags)
        assert out[4] != -1

    def test_wrong_shape_rejected(self):
        m = AmrMesh.uniform(2, 2)
        with pytest.raises(ValueError):
            enforce_balance(m, np.zeros(3, dtype=np.int8))

    def test_balanced_output_property(self):
        rng = np.random.default_rng(42)
        m = AmrMesh.uniform(6, 6, max_level=2)
        s = state_with_H(m, 1.0 + rng.random(m.ncells))
        for _ in range(4):
            flags = rng.integers(-1, 2, m.ncells).astype(np.int8)
            m, s = regrid(m, s, flags)
            assert m.check_balance()


class TestRegrid:
    def test_refine_all(self):
        m = AmrMesh.uniform(2, 2, max_level=1)
        s = state_with_H(m, [1.0, 2.0, 3.0, 4.0])
        m2, s2 = regrid(m, s, np.ones(4, dtype=np.int8))
        assert m2.ncells == 16
        # children inherit parent values: 4 cells of each value
        assert sorted(np.unique(s2.H).tolist()) == [1.0, 2.0, 3.0, 4.0]
        for v in (1.0, 2.0, 3.0, 4.0):
            assert (s2.H == v).sum() == 4

    def test_refine_conserves_mass(self):
        m = AmrMesh.uniform(4, 4, max_level=2)
        rng = np.random.default_rng(1)
        s = state_with_H(m, 1.0 + rng.random(16))
        mass0 = s.total_mass(m.cell_area())
        m2, s2 = regrid(m, s, np.ones(16, dtype=np.int8))
        assert s2.total_mass(m2.cell_area()) == pytest.approx(mass0, rel=1e-15)

    def test_coarsen_complete_quads(self):
        m = AmrMesh.uniform(2, 2, max_level=1, level=1)  # 16 fine cells
        s = state_with_H(m, np.arange(16.0) + 1.0)
        m2, s2 = regrid(m, s, -np.ones(16, dtype=np.int8))
        assert m2.ncells == 4
        assert s2.total_mass(m2.cell_area()) == pytest.approx(
            s.total_mass(m.cell_area()), rel=1e-15
        )

    def test_coarsen_partial_quad_blocked(self):
        m = AmrMesh.uniform(2, 2, max_level=1, level=1)
        flags = -np.ones(16, dtype=np.int8)
        flags[0] = 0  # one sibling refuses
        m2, _ = regrid(m, state_with_H(m, np.ones(16)), flags)
        # only quads with all four siblings flagged coarsen: 3 quads coarsen
        assert m2.ncells == 4 + 3

    def test_coarsen_averages_at_state_dtype(self):
        m = AmrMesh.uniform(2, 2, max_level=1, level=1)
        H = np.full(16, 1.0, dtype=np.float64)
        H[:4] = 1.0 + 2**-30  # below float32 resolution of the mean
        s = state_with_H(m, H, policy=MIN_PRECISION)
        m2, s2 = regrid(m, s, -np.ones(16, dtype=np.int8))
        # the float32 average rounds the 2^-30 away entirely or keeps an ulp
        assert s2.H.dtype == np.float32

    def test_roundtrip_refine_then_coarsen(self):
        m = AmrMesh.uniform(4, 4, max_level=1)
        s = state_with_H(m, np.full(16, 2.5))
        m2, s2 = regrid(m, s, np.ones(16, dtype=np.int8))
        m3, s3 = regrid(m2, s2, -np.ones(m2.ncells, dtype=np.int8))
        assert m3.ncells == 16
        np.testing.assert_allclose(np.sort(s3.H), np.full(16, 2.5))

    def test_mixed_flags(self):
        m = AmrMesh.uniform(4, 4, max_level=1)
        flags = np.zeros(16, dtype=np.int8)
        flags[5] = 1
        m2, s2 = regrid(m, state_with_H(m, np.ones(16)), flags)
        assert m2.ncells == 15 + 4
        assert m2.check_balance()
