"""Smoke tests for the example scripts.

Every example is run as a real subprocess (the way a user would) with
small arguments; an example that raises, hangs, or prints nothing is a
documentation bug as much as a code bug.  ``bit_sweep`` is exercised at
reduced width count via its module API instead (its CLI run is minutes).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} printed nothing"
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--nx", "16", "--steps", "40", "--max-level", "1")
        assert "orders below the solution" in out

    def test_clamr_dam_break(self, tmp_path):
        out = run_example(
            "clamr_dam_break.py", "--nx", "16", "--steps", "60", "--outdir", str(tmp_path)
        )
        assert "total variation" in out.lower()
        assert list(tmp_path.glob("*.clmr"))

    def test_self_thermal_bubble(self):
        out = run_example(
            "self_thermal_bubble.py", "--elems", "3", "--order", "3", "--steps", "30"
        )
        assert "Asymmetry" in out

    def test_architecture_explorer(self):
        out = run_example("architecture_explorer.py", "--app", "clamr", "--device", "titanx")
        assert "GTX TITAN X" in out

    def test_precision_tuning(self):
        out = run_example("precision_tuning.py", "--error-bound", "1e-3")
        assert "storage cost" in out

    def test_tradespace_explorer(self):
        out = run_example("tradespace_explorer.py", "--budget-joules", "5000")
        assert "Pareto front" in out

    def test_parallel_reproducibility(self):
        out = run_example("parallel_reproducibility.py")
        assert "bitwise" in out.lower()

    def test_reproduce_paper_subset(self):
        out = run_example("reproduce_paper.py", "--scale", "quick", "--only", "table4,fig5")
        assert "GNU" in out and "Fig. 5" in out

    def test_trace_dam_break(self, tmp_path):
        out = run_example(
            "trace_dam_break.py", "--nx", "16", "--steps", "30",
            "--max-level", "1", "--outdir", str(tmp_path),
        )
        assert "Kernel time by precision policy" in out
        assert "numerical events" in out
        for policy in ("min", "mixed", "full"):
            assert (tmp_path / f"dam_break_{policy}.trace.json").exists()
            assert (tmp_path / f"dam_break_{policy}.jsonl").exists()


class TestBitSweepViaApi:
    def test_example_pipeline_small(self):
        """The bit_sweep example's pipeline at a reduced width ladder."""
        import numpy as np

        from repro.clamr import ClamrSimulation, DamBreakConfig
        from repro.clamr.kernels import FaceLists, compute_timestep, finite_diff_vectorized
        from repro.precision.bitsweep import sweep_mantissa_bits
        from repro.precision.emulation import truncate_mantissa

        cfg = DamBreakConfig(nx=10, ny=10, max_level=0, start_refined=False)

        def line(width):
            sim = ClamrSimulation(cfg, policy="full")
            faces = FaceLists.from_mesh(sim.mesh)
            for _ in range(25):
                dt = compute_timestep(sim.mesh, sim.state, cfg.courant)
                finite_diff_vectorized(sim.mesh, sim.state, dt, faces=faces)
                if width is not None:
                    sim.state.H[...] = truncate_mantissa(sim.state.H, width)
            field = sim.mesh.sample_to_uniform(sim.state.H.astype(np.float64))
            return field[:, field.shape[1] // 2]

        ref = line(None)
        result = sweep_mantissa_bits(
            lambda w: float(np.max(np.abs(line(w) - ref))), widths=(10, 23)
        )
        assert result.errors[0] > result.errors[1]
