"""Unit tests for repro.machine: specs, counters, roofline, energy, compiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.compiler import GNU, INTEL, CompilerModel
from repro.machine.counters import CountedWorkload, KernelCounters, WorkloadProfile
from repro.machine.energy import estimate_energy
from repro.machine.roofline import RooflineModel, arithmetic_intensity, predict_runtime
from repro.machine.specs import CLAMR_DEVICE_ORDER, DEVICES, SELF_DEVICE_ORDER, DeviceKind, device


def profile(
    flops=10_000_000_000,
    state_bytes=10_000_000_000,
    state_itemsize=8,
    compute_itemsize=8,
    **kw,
):
    return WorkloadProfile(
        name="test",
        flops=flops,
        state_bytes=state_bytes,
        state_itemsize=state_itemsize,
        compute_itemsize=compute_itemsize,
        resident_state_bytes=10**9,
        **kw,
    )


class TestSpecs:
    def test_all_paper_devices_present(self):
        for key in ("haswell", "broadwell", "k40m", "k6000", "p100", "titanx"):
            assert key in DEVICES

    def test_device_orders_match_paper_tables(self):
        assert len(CLAMR_DEVICE_ORDER) == 5  # no P100 in Table I
        assert len(SELF_DEVICE_ORDER) == 6
        assert "p100" not in CLAMR_DEVICE_ORDER

    def test_titanx_is_the_32_to_1_card(self):
        assert device("titanx").sp_dp_ratio == pytest.approx(32.0, rel=0.01)

    def test_scientific_gpus_are_2_or_3_to_1(self):
        for key in ("k40m", "k6000", "p100"):
            assert device(key).sp_dp_ratio <= 3.01

    def test_peak_gflops_by_itemsize(self):
        d = device("haswell")
        assert d.peak_gflops(8) == d.dp_gflops
        assert d.peak_gflops(4) == d.sp_gflops
        assert d.peak_gflops(2) == d.sp_gflops  # no native fp16 pipes

    def test_lookup_case_insensitive(self):
        assert device("  Haswell ").name == "Haswell"

    def test_unknown_device_raises_with_choices(self):
        with pytest.raises(KeyError, match="known devices"):
            device("a100")

    def test_cpu_gpu_kinds(self):
        assert device("haswell").kind is DeviceKind.CPU
        assert device("p100").kind is DeviceKind.GPU


class TestCounters:
    def test_add_and_merge(self):
        a = KernelCounters()
        a.add(flops=10, state_bytes=20, fixed_bytes=2)
        b = KernelCounters()
        b.add(flops=5, compute_bytes=7)
        a.merge(b)
        assert (a.flops, a.state_bytes, a.compute_bytes, a.fixed_bytes) == (15, 20, 7, 2)
        assert a.invocations == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            KernelCounters().add(flops=-1)

    def test_profile_freeze(self):
        w = CountedWorkload(name="x", state_itemsize=4, compute_itemsize=8)
        w.counters.add(flops=100, state_bytes=400)
        p = w.profile()
        assert p.flops == 100 and p.state_itemsize == 4 and p.compute_itemsize == 8

    def test_scaled(self):
        p = profile().scaled(2.5)
        assert p.flops == 25_000_000_000
        assert p.resident_state_bytes == 10**9  # footprint unchanged

    def test_scaled_resident(self):
        p = profile().scaled_resident(2.0)
        assert p.resident_state_bytes == 2 * 10**9

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            profile().scaled(0.0)

    def test_invalid_vectorizable_fraction(self):
        with pytest.raises(ValueError):
            profile(vectorizable_fraction=1.5)

    def test_invalid_itemsize(self):
        with pytest.raises(ValueError):
            profile(state_itemsize=3)

    def test_arithmetic_intensity(self):
        assert arithmetic_intensity(profile(flops=100, state_bytes=50)) == 2.0
        assert arithmetic_intensity(profile(state_bytes=0)) == np.inf


class TestRoofline:
    def test_memory_bound_detection(self):
        # 0.1 flop/byte on a CPU: clearly memory-bound
        p = profile(flops=10**9, state_bytes=10**10)
        pred = RooflineModel(device=device("haswell")).predict(p)
        assert pred.is_memory_bound
        assert pred.runtime_s == pytest.approx(pred.memory_time_s + pred.overhead_s)

    def test_compute_bound_detection(self):
        p = profile(flops=10**13, state_bytes=10**8)
        pred = RooflineModel(device=device("haswell")).predict(p)
        assert not pred.is_memory_bound

    def test_single_precision_halves_memory_time(self):
        full = profile(state_itemsize=8, compute_itemsize=8)
        minp = profile(state_bytes=full.state_bytes // 2, state_itemsize=4, compute_itemsize=4)
        model = RooflineModel(device=device("haswell"))
        assert model.predict(minp).memory_time_s == pytest.approx(
            model.predict(full).memory_time_s / 2
        )

    def test_fixed_bytes_do_not_scale_with_precision(self):
        base = dict(flops=10**9, state_bytes=10**10)
        full = profile(**base, fixed_bytes=10**10)
        model = RooflineModel(device=device("haswell"))
        t_full = model.predict(full).memory_time_s
        half_state = profile(
            flops=10**9, state_bytes=5 * 10**9, state_itemsize=4, compute_itemsize=4, fixed_bytes=10**10
        )
        t_min = model.predict(half_state).memory_time_s
        # less than 2x because the fixed traffic stays
        assert 1.0 < t_full / t_min < 2.0

    def test_unvectorized_cpu_slower(self):
        p = profile(flops=10**12, state_bytes=10**9)
        fast = RooflineModel(device=device("haswell"), vectorized=True).predict(p).runtime_s
        slow = RooflineModel(device=device("haswell"), vectorized=False).predict(p).runtime_s
        assert slow > fast

    def test_vectorization_ignored_on_gpu(self):
        p = profile(flops=10**12, state_bytes=10**9)
        a = RooflineModel(device=device("p100"), vectorized=True).predict(p).runtime_s
        b = RooflineModel(device=device("p100"), vectorized=False).predict(p).runtime_s
        assert a == b

    def test_titanx_dp_penalty(self):
        p = profile(flops=10**12, state_bytes=10**8, compute_itemsize=8)
        p_sp = profile(flops=10**12, state_bytes=10**8, state_itemsize=4, compute_itemsize=4)
        model = RooflineModel(device=device("titanx"))
        assert model.predict(p).runtime_s / model.predict(p_sp).runtime_s > 4.0

    def test_dense_compute_bump_only_on_starved_gpus(self):
        dense = profile(flops=10**12, state_bytes=10**8, dense_compute=True)
        sparse = profile(flops=10**12, state_bytes=10**8, dense_compute=False)
        titan = RooflineModel(device=device("titanx"))
        assert titan.predict(dense).compute_time_s < titan.predict(sparse).compute_time_s
        # P100 (2:1) gets no bump
        p100 = RooflineModel(device=device("p100"))
        assert p100.predict(dense).compute_time_s == p100.predict(sparse).compute_time_s
        # and single-precision work gets no bump anywhere
        dense_sp = profile(
            flops=10**12, state_bytes=10**8, state_itemsize=4, compute_itemsize=4, dense_compute=True
        )
        sparse_sp = profile(
            flops=10**12, state_bytes=10**8, state_itemsize=4, compute_itemsize=4, dense_compute=False
        )
        assert titan.predict(dense_sp).compute_time_s == titan.predict(sparse_sp).compute_time_s

    def test_memory_gb_includes_base(self):
        pred = RooflineModel(device=device("haswell")).predict(profile())
        assert pred.memory_gb == pytest.approx(device("haswell").base_memory_gb + 1.0)

    def test_invalid_efficiencies(self):
        with pytest.raises(ValueError):
            RooflineModel(device=device("haswell"), compute_efficiency=0.0)
        with pytest.raises(ValueError):
            RooflineModel(device=device("haswell"), bandwidth_efficiency=1.5)

    @given(st.floats(min_value=1.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_work(self, factor):
        p = profile()
        base = predict_runtime(p, device("broadwell"))
        more = predict_runtime(p.scaled(factor), device("broadwell"))
        assert more > base


class TestEnergy:
    def test_tdp_times_runtime(self):
        e = estimate_energy(device("haswell"), runtime_s=10.0)
        assert e.energy_joules == pytest.approx(1050.0)
        assert e.power_watts == 105.0

    def test_activity_factor(self):
        e = estimate_energy(device("p100"), runtime_s=4.0, activity_factor=0.5)
        assert e.energy_joules == pytest.approx(500.0)

    def test_kwh(self):
        e = estimate_energy(device("haswell"), runtime_s=3600.0)
        assert e.energy_kwh == pytest.approx(0.105)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_energy(device("haswell"), runtime_s=-1.0)
        with pytest.raises(ValueError):
            estimate_energy(device("haswell"), runtime_s=1.0, activity_factor=0.0)


class TestCompilerModels:
    def test_gnu_inversion(self):
        """The Table IV anomaly: GNU single slower than GNU double."""
        single = profile(flops=10**12, state_bytes=10**9, state_itemsize=4, compute_itemsize=4)
        double = profile(flops=10**12, state_bytes=2 * 10**9, state_itemsize=8, compute_itemsize=8)
        t_single = GNU.runtime(single, device("haswell"))
        t_double = GNU.runtime(double, device("haswell"))
        assert t_single > t_double
        # calibrated ratio ~ 304/262
        assert t_single / t_double == pytest.approx(304.09 / 261.65, rel=0.05)

    def test_intel_normal_ordering(self):
        single = profile(flops=10**12, state_bytes=10**9, state_itemsize=4, compute_itemsize=4)
        double = profile(flops=10**12, state_bytes=2 * 10**9, state_itemsize=8, compute_itemsize=8)
        t_single = INTEL.runtime(single, device("haswell"))
        t_double = INTEL.runtime(double, device("haswell"))
        assert t_single < t_double
        assert t_single / t_double == pytest.approx(185.89 / 252.85, rel=0.05)

    def test_compilers_similar_at_double(self):
        double = profile(flops=10**12, state_bytes=2 * 10**9, state_itemsize=8, compute_itemsize=8)
        t_gnu = GNU.runtime(double, device("haswell"))
        t_intel = INTEL.runtime(double, device("haswell"))
        assert t_intel < t_gnu  # Intel slightly ahead
        assert t_gnu / t_intel < 1.1  # but close, as in Table IV

    def test_validation(self):
        with pytest.raises(ValueError):
            CompilerModel(name="x", scalar_efficiency=0.0)
        with pytest.raises(ValueError):
            CompilerModel(name="x", scalar_efficiency=0.5, auto_simd_single=0.5)
        with pytest.raises(ValueError):
            CompilerModel(name="x", scalar_efficiency=0.5, promotion_fraction_single=2.0)
        with pytest.raises(ValueError):
            CompilerModel(name="x", scalar_efficiency=0.5, conversion_cost=-1.0)

    def test_effective_flops_only_penalizes_single(self):
        single = profile(state_itemsize=4, compute_itemsize=4)
        double = profile(state_itemsize=8, compute_itemsize=8)
        assert GNU.effective_flops(single) > single.flops
        assert GNU.effective_flops(double) == double.flops
        assert INTEL.effective_flops(single) == single.flops
