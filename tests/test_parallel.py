"""Tests for simulated-SPMD decompositions and parallel reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clamr.mesh import AmrMesh
from repro.parallel import (
    Decomposition,
    block_partition,
    morton_partition,
    parallel_sum,
    reduction_spread,
    stripe_partition,
)
from repro.parallel.reduction import ALGORITHMS


def amr_mesh():
    mesh = AmrMesh.uniform(8, 8, max_level=1)
    # refine a quadrant to make the partition problem non-trivial
    from repro.clamr.amr import regrid
    from repro.clamr.state import ShallowWaterState

    flags = np.zeros(64, dtype=np.int8)
    flags[:16] = 1
    state = ShallowWaterState.zeros(64)
    mesh, _ = regrid(mesh, state, flags)
    return mesh


class TestPartitions:
    def test_stripe_covers_and_balances(self):
        d = stripe_partition(100, 7)
        assert d.ncells == 100
        assert d.nranks == 7
        assert d.imbalance() < 1.1

    def test_single_rank(self):
        d = stripe_partition(10, 1)
        np.testing.assert_array_equal(d.ranks[0], np.arange(10))

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError):
            stripe_partition(3, 5)
        with pytest.raises(ValueError):
            stripe_partition(3, 0)

    def test_block_partition_is_spatial(self):
        mesh = AmrMesh.uniform(8, 8)
        d = block_partition(mesh, 4)
        x, _ = mesh.cell_centers()
        # every cell in rank 0 lies left of every cell in rank 3
        assert x[d.ranks[0]].max() <= x[d.ranks[3]].min()

    def test_morton_partition_valid_on_amr(self):
        mesh = amr_mesh()
        d = morton_partition(mesh, 5)
        assert d.ncells == mesh.ncells
        assert d.imbalance() < 1.2

    def test_morton_locality(self):
        """Z-order chunks are spatially compact: the average intra-rank
        spread is far below the domain size."""
        mesh = AmrMesh.uniform(16, 16)
        d = morton_partition(mesh, 16)
        x, y = mesh.cell_centers()
        spreads = [
            np.hypot(np.ptp(x[r]), np.ptp(y[r])) for r in d.ranks
        ]
        assert np.mean(spreads) < 8.0  # domain diagonal is ~22.6

    def test_decomposition_validation(self):
        with pytest.raises(ValueError, match="exactly once"):
            Decomposition("bad", (np.array([0, 1]), np.array([1, 2])))
        with pytest.raises(ValueError, match="exactly once"):
            Decomposition("gap", (np.array([0]), np.array([2])))
        with pytest.raises(ValueError):
            Decomposition("empty", ())


class TestParallelSum:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.values = (rng.random(5000) * 10.0 ** rng.integers(-3, 4, 5000)).astype(np.float64)
        self.exact = float(np.sum(self.values.astype(np.longdouble)))

    def test_all_algorithms_close(self):
        d = stripe_partition(self.values.size, 8)
        for algo in ALGORITHMS:
            result = parallel_sum(self.values, d, algorithm=algo)
            assert result == pytest.approx(self.exact, rel=1e-5)

    def test_binned_bitwise_decomposition_independent(self):
        mesh = AmrMesh.uniform(8, 8)
        values = np.random.default_rng(1).random(64) * 1e6
        decs = [
            stripe_partition(64, 1),
            stripe_partition(64, 7),
            block_partition(mesh, 4),
            morton_partition(mesh, 9),
        ]
        results = {parallel_sum(values, d, algorithm="binned") for d in decs}
        assert len(results) == 1

    def test_dd_decomposition_independent_in_practice(self):
        values = np.random.default_rng(2).random(1000)
        decs = [stripe_partition(1000, n) for n in (1, 3, 10, 31)]
        study = reduction_spread(values, decs, algorithm="dd")
        assert study.digits_stable >= 15.0

    def test_naive_float32_wobbles(self):
        rng = np.random.default_rng(3)
        values = (rng.random(20000) * 1e3).astype(np.float32)
        decs = [stripe_partition(values.size, n) for n in (1, 2, 5, 16, 64)]
        study = reduction_spread(values, decs, algorithm="naive", dtype=np.float32)
        assert not study.reproducible
        assert study.digits_stable < 8.0

    def test_reproducible_beats_naive(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=30000) * 10.0 ** rng.integers(-5, 6, 30000)
        decs = [stripe_partition(values.size, n) for n in (1, 4, 13, 64)]
        naive = reduction_spread(values, decs, algorithm="naive")
        binned = reduction_spread(values, decs, algorithm="binned")
        assert binned.digits_stable == 17.0
        assert binned.digits_stable > naive.digits_stable

    def test_validation(self):
        d = stripe_partition(10, 2)
        with pytest.raises(ValueError, match="unknown algorithm"):
            parallel_sum(np.ones(10), d, algorithm="magic")
        with pytest.raises(ValueError, match="cell count"):
            parallel_sum(np.ones(5), d)
        with pytest.raises(ValueError, match="1-D"):
            parallel_sum(np.ones((2, 5)), d)

    @given(st.integers(1, 12), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_binned_property_any_rank_count(self, nranks, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=200) * 1e8
        base = parallel_sum(values, stripe_partition(200, 1), algorithm="binned")
        other = parallel_sum(values, stripe_partition(200, nranks), algorithm="binned")
        assert base == other


class TestReductionStudy:
    def test_spread_fields(self):
        values = np.ones(100)
        decs = [stripe_partition(100, n) for n in (1, 4)]
        study = reduction_spread(values, decs, algorithm="kahan")
        assert study.algorithm == "kahan"
        assert len(study.results) == 2
        assert study.reproducible  # summing ones is exact

    def test_empty_decomposition_list_rejected(self):
        with pytest.raises(ValueError):
            reduction_spread(np.ones(4), [], algorithm="naive")
