"""Execution-strategy parity for every registered scenario.

The reproducibility contract extends to scenarios: running a scenario
under worker processes (``jobs=2``) or under the CSR scatter plan must
produce *bit-identical* state to the serial / ``np.add.at`` reference.
These are the same guarantees the seed workloads already make
(test_harness_sweeps, test_clamr_scatter), re-asserted over the
registry so a new scenario cannot silently opt out of them.
"""

import numpy as np
import pytest

from repro.clamr.kernels import scatter_mode
from repro.harness.experiments import run_clamr_levels, run_self_precisions
from repro.scenarios import build_simulation, scenario_names

CLAMR_SCENARIOS = [n for n in scenario_names() if n.startswith("clamr/")]
SELF_SCENARIOS = [n for n in scenario_names() if n.startswith("self/")]

NX, STEPS = 12, 8
ELEMS, ORDER, SST = 2, 2, 4


class TestProcessParallelParity:
    @pytest.mark.parametrize("name", CLAMR_SCENARIOS)
    def test_clamr_scenario_jobs2_bit_identical(self, name):
        serial = run_clamr_levels(nx=NX, steps=STEPS, scenario=name)
        parallel = run_clamr_levels(nx=NX, steps=STEPS, scenario=name, jobs=2)
        assert serial.keys() == parallel.keys()
        for level in serial:
            a, b = serial[level], parallel[level]
            assert np.array_equal(a.slice_precise, b.slice_precise), level
            assert a.mass_history == b.mass_history, level
            assert np.array_equal(a.field, b.field), level

    @pytest.mark.parametrize("name", SELF_SCENARIOS)
    def test_self_scenario_jobs2_bit_identical(self, name):
        serial = run_self_precisions(
            elems=ELEMS, order=ORDER, steps=SST, scenario=name
        )
        parallel = run_self_precisions(
            elems=ELEMS, order=ORDER, steps=SST, scenario=name, jobs=2
        )
        assert serial.keys() == parallel.keys()
        for prec in serial:
            a, b = serial[prec], parallel[prec]
            assert np.array_equal(a.slice_precise, b.slice_precise), prec
            assert np.array_equal(a.anomaly_field, b.anomaly_field), prec


class TestScatterModeParity:
    @pytest.mark.parametrize("name", CLAMR_SCENARIOS)
    @pytest.mark.parametrize("policy", ["min", "full"])
    def test_plan_vs_add_at_bit_identical(self, name, policy):
        states = {}
        for mode in ("plan", "add_at"):
            with scatter_mode(mode):
                sim, _cfg, _steps, _policy = build_simulation(
                    name, scale="quick", policy=policy
                )
                sim.run(STEPS)
            states[mode] = (
                sim.state.H.copy(), sim.state.U.copy(), sim.state.V.copy()
            )
        for a, b in zip(states["plan"], states["add_at"]):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b), f"{name}/{policy}: state bits diverged"
