"""Kernel-backend registry, dispatch, and bit-identity parity.

The compiled backends (``python`` loops, ``cext``, ``numba``) sit behind
the NumPy oracle under a hard contract: *bit-identical state at every
precision level, scheme, and scenario, or the dispatch is a bug*.  These
tests enforce the contract end to end — raw kernel calls, full
simulation runs (AMR regrids included), ledger conservation digests,
state-hash ladders, process-parallel sweeps — plus the registry
semantics (selection precedence, env var, graceful fallback) and the
deliberate exclusion of the backend from run identity.

The ``python`` backend is always importable, so the parity net stays
armed even where no compiler or numba exists.  ``cext``/``numba`` cases
skip where unavailable and run in CI.
"""

import os

import numpy as np
import pytest

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.clamr import backends
from repro.clamr.backends import (
    BACKENDS,
    ENV_VAR,
    UnknownBackendError,
    active_backend,
    available_backends,
    kernel_backend,
    normalize_backend,
    resolved_backend,
    set_kernel_backend,
)
from repro.clamr.kernels import FaceLists, compute_timestep, finite_diff_vectorized
from repro.clamr.muscl import finite_diff_muscl

HAVE_CEXT = backends.cext.availability()[0]
HAVE_NUMBA = backends.numba_backend.availability()[0]

#: compiled backends present in this environment (parametrized cases)
COMPILED = [
    pytest.param("cext", marks=pytest.mark.skipif(not HAVE_CEXT, reason="no C compiler")),
    pytest.param("numba", marks=pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")),
]

BEST_COMPILED = "numba" if HAVE_NUMBA else ("cext" if HAVE_CEXT else None)


@pytest.fixture(autouse=True)
def _isolate_backend():
    """Every test starts and ends on the default selection, env unset."""
    os.environ.pop(ENV_VAR, None)
    set_kernel_backend(None)
    yield
    os.environ.pop(ENV_VAR, None)
    set_kernel_backend(None)


class TestRegistry:
    def test_registry_names(self):
        assert BACKENDS == ("numpy", "python", "cext", "numba", "auto")

    def test_normalize_canonicalizes(self):
        assert normalize_backend(" CEXT ") == "cext"
        assert normalize_backend("NumPy") == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError, match="bogus"):
            normalize_backend("bogus")
        # a ValueError subclass: the CLI turns it into a one-line exit 2
        assert issubclass(UnknownBackendError, ValueError)

    def test_default_is_numpy(self):
        assert active_backend() == "numpy"
        assert resolved_backend() == "numpy"

    def test_env_var_selects(self):
        os.environ[ENV_VAR] = "python"
        assert active_backend() == "python"

    def test_explicit_beats_env(self):
        os.environ[ENV_VAR] = "python"
        set_kernel_backend("numpy")
        assert active_backend() == "numpy"

    def test_context_manager_restores(self):
        with kernel_backend("python"):
            assert active_backend() == "python"
            with kernel_backend("numpy"):
                assert active_backend() == "numpy"
            assert active_backend() == "python"
        assert active_backend() == "numpy"

    def test_available_backends_report(self):
        rows = {r["name"]: r for r in available_backends()}
        assert set(rows) == set(BACKENDS)
        assert rows["numpy"]["available"] and rows["python"]["available"]
        assert rows["auto"]["detail"].startswith("resolves to ")

    def test_float16_always_runs_the_oracle(self):
        # the half policy computes in float16, which no compiled backend
        # supports; dispatch must fall back rather than convert
        for name in ("cext", "numba", "auto"):
            with kernel_backend(name):
                assert resolved_backend(np.float16) == "numpy"
        # the pure-Python loops are dtype-generic and do run float16
        with kernel_backend("python"):
            assert resolved_backend(np.float16) == "python"


def _snapshot(level, nx=12, max_level=1, prerun=4):
    """A small evolved dam break: mixed-level mesh, live wave front."""
    cfg = DamBreakConfig(nx=nx, ny=nx, max_level=max_level)
    sim = ClamrSimulation(cfg, policy=level)
    sim.run(prerun)
    return sim.mesh, sim.state, FaceLists.from_mesh(sim.mesh)


def _evolve(mesh, state, faces, kernel, bathy, backend, steps=4):
    s = state.copy()
    dts = []
    with kernel_backend(backend):
        for _ in range(steps):
            dt = compute_timestep(mesh, s, 0.25)
            dts.append(dt)
            kernel(mesh, s, dt, faces=faces, bathy=bathy)
    return s, dts


def _assert_states_equal(a, b, context=""):
    assert np.array_equal(a.H, b.H, equal_nan=True), f"H bits diverged {context}"
    assert np.array_equal(a.U, b.U, equal_nan=True), f"U bits diverged {context}"
    assert np.array_equal(a.V, b.V, equal_nan=True), f"V bits diverged {context}"


class TestKernelParity:
    """Raw kernel calls on a frozen mesh: fd + muscl, flat + bathymetry."""

    @pytest.mark.parametrize("level", ["half", "min", "mixed", "full"])
    @pytest.mark.parametrize("kernel", [finite_diff_vectorized, finite_diff_muscl],
                             ids=["fd", "muscl"])
    @pytest.mark.parametrize("with_bathy", [False, True], ids=["flat", "bathy"])
    def test_python_matches_numpy(self, level, kernel, with_bathy):
        mesh, state, faces = _snapshot(level)
        bathy = 0.05 * np.random.default_rng(7).random(mesh.ncells) if with_bathy else None
        ref, ref_dts = _evolve(mesh, state, faces, kernel, bathy, "numpy")
        got, got_dts = _evolve(mesh, state, faces, kernel, bathy, "python")
        _assert_states_equal(ref, got, f"({level})")
        assert ref_dts == got_dts

    @pytest.mark.parametrize("backend", COMPILED)
    @pytest.mark.parametrize("level", ["min", "mixed", "full"])
    @pytest.mark.parametrize("kernel", [finite_diff_vectorized, finite_diff_muscl],
                             ids=["fd", "muscl"])
    @pytest.mark.parametrize("with_bathy", [False, True], ids=["flat", "bathy"])
    def test_compiled_matches_numpy(self, backend, level, kernel, with_bathy):
        mesh, state, faces = _snapshot(level, nx=16, max_level=2)
        bathy = 0.05 * np.random.default_rng(7).random(mesh.ncells) if with_bathy else None
        ref, ref_dts = _evolve(mesh, state, faces, kernel, bathy, "numpy", steps=6)
        got, got_dts = _evolve(mesh, state, faces, kernel, bathy, backend, steps=6)
        _assert_states_equal(ref, got, f"({backend}/{level})")
        assert ref_dts == got_dts


class TestSimulationParity:
    """Whole runs through the drivers: dispatch + warmup + AMR regrids."""

    def _run(self, backend, level="mixed", scheme="rusanov", steps=12):
        cfg = DamBreakConfig(nx=12, ny=12, max_level=2)
        with kernel_backend(backend):
            sim = ClamrSimulation(cfg, policy=level, scheme=scheme)
            res = sim.run(steps)
        return sim, res

    @pytest.mark.parametrize("level", ["half", "min", "mixed", "full"])
    @pytest.mark.parametrize("scheme", ["rusanov", "muscl"])
    def test_python_full_run(self, level, scheme):
        ref_sim, ref = self._run("numpy", level, scheme, steps=8)
        got_sim, got = self._run("python", level, scheme, steps=8)
        _assert_states_equal(ref_sim.state, got_sim.state, f"({level}/{scheme})")
        assert ref.mass_history == got.mass_history

    @pytest.mark.parametrize("backend", COMPILED)
    @pytest.mark.parametrize("level", ["min", "mixed", "full"])
    @pytest.mark.parametrize("scheme", ["rusanov", "muscl"])
    def test_compiled_full_run(self, backend, level, scheme):
        ref_sim, ref = self._run("numpy", level, scheme)
        got_sim, got = self._run(backend, level, scheme)
        _assert_states_equal(ref_sim.state, got_sim.state, f"({backend}/{level}/{scheme})")
        assert ref.mass_history == got.mass_history

    def test_self_python_parity(self):
        from repro.self_ import SelfSimulation, ThermalBubbleConfig

        for precision in ("single", "double"):
            cfg = ThermalBubbleConfig(nex=2, ney=2, nez=2, order=2)
            with kernel_backend("numpy"):
                ref = SelfSimulation(cfg, precision=precision).run(4)
            with kernel_backend("python"):
                got = SelfSimulation(cfg, precision=precision).run(4)
            assert np.array_equal(ref.anomaly_field, got.anomaly_field), precision
            assert ref.max_vertical_velocity == got.max_vertical_velocity

    @pytest.mark.parametrize("backend", COMPILED)
    def test_self_compiled_parity(self, backend):
        from repro.self_ import SelfSimulation, ThermalBubbleConfig

        cfg = ThermalBubbleConfig(nex=2, ney=2, nez=2, order=3)
        with kernel_backend("numpy"):
            ref = SelfSimulation(cfg, precision="double").run(6)
        with kernel_backend(backend):
            got = SelfSimulation(cfg, precision="double").run(6)
        assert np.array_equal(ref.anomaly_field, got.anomaly_field)
        assert ref.max_vertical_velocity == got.max_vertical_velocity


@pytest.mark.skipif(BEST_COMPILED is None, reason="no compiled backend available")
class TestScenarioParity:
    """Every registered scenario, compiled vs oracle, bit for bit."""

    def _states(self, name, backend, steps=6):
        from repro.scenarios import build_simulation

        with kernel_backend(backend):
            sim, _cfg, _steps, _policy = build_simulation(name, scale="quick")
            sim.run(steps)
        if hasattr(sim, "state"):
            return sim.state.H.copy(), sim.state.U.copy(), sim.state.V.copy()
        return (sim.U.copy(),)

    def test_all_scenarios_bit_identical(self):
        from repro.scenarios import scenario_names

        names = scenario_names()
        assert len(names) >= 8  # the full library rides through the backends
        for name in names:
            ref = self._states(name, "numpy")
            got = self._states(name, BEST_COMPILED)
            for a, b in zip(ref, got):
                assert a.dtype == b.dtype, name
                assert np.array_equal(a, b, equal_nan=True), \
                    f"{name}: state bits diverged on {BEST_COMPILED}"


class TestLadderAndLedgerParity:
    """Fingerprint-level equivalence: hashes, digests, run identity."""

    BACKEND = BEST_COMPILED or "python"

    def _record(self, backend):
        from repro.ledger import run_workload

        with kernel_backend(backend):
            record, _tel = run_workload(
                "clamr", nx=12, steps=10, max_level=1,
                policy="mixed", scheme="rusanov",
            )
        return record

    def test_conservation_hex_and_identity_shared(self):
        ref = self._record("numpy")
        got = self._record(self.BACKEND)
        # bitwise-identical conservation sums, same run identity...
        assert ref.fidelity["conservation_last_hex"] == got.fidelity["conservation_last_hex"]
        assert ref.workload_key == got.workload_key
        assert ref.fingerprint == got.fingerprint
        # ...while the provenance field says who computed it
        assert ref.backend == "numpy"
        assert got.backend in ("cext", "numba", "python")

    def test_workload_key_pinned(self):
        # the literal guards the *exclusion*: if the backend ever leaks
        # into the hashed identity, this stops matching and the committed
        # golden fingerprints all silently fork per machine
        assert self._record(self.BACKEND).workload_key == "584954c819aff89d"

    def test_record_roundtrip_and_legacy_default(self):
        from repro.ledger.record import RunRecord

        rec = self._record(self.BACKEND)
        clone = RunRecord.from_json(rec.to_json())
        assert clone.backend == rec.backend
        # pre-backend records (no field at all) read back as the oracle
        doc = __import__("json").loads(rec.to_json())
        del doc["backend"]
        assert RunRecord.from_dict(doc).backend == "numpy"

    def test_hash_ladder_root_identical(self):
        from repro.diverge.ladder import StateHashLadder
        from repro.telemetry import Telemetry

        roots = {}
        for backend in ("numpy", self.BACKEND):
            ladder = StateHashLadder(stride=2, label=backend)
            tel = Telemetry(label="t", ladder=ladder)
            cfg = DamBreakConfig(nx=12, ny=12, max_level=1)
            with kernel_backend(backend):
                ClamrSimulation(cfg, policy="mixed", telemetry=tel).run(10)
            roots[backend] = ladder.root()
        assert roots["numpy"] == roots[self.BACKEND]

    def test_warmup_span_only_off_oracle(self):
        from repro.telemetry import Telemetry

        for backend, expect in (("numpy", 0), (self.BACKEND, 1)):
            tel = Telemetry(label="t")
            cfg = DamBreakConfig(nx=8, ny=8, max_level=0)
            with kernel_backend(backend):
                ClamrSimulation(cfg, policy="full", telemetry=tel).run(2)
            spans = [s for s in tel.tracer.spans if s.name == "clamr/backend_warmup"]
            assert len(spans) == expect, backend


@pytest.mark.skipif(BEST_COMPILED is None, reason="no compiled backend available")
class TestExecutorParity:
    def test_jobs2_compiled_matches_serial_oracle(self):
        # workers are spawned processes: they inherit the selection via
        # $REPRO_KERNEL_BACKEND, not via module state
        from repro.harness.experiments import run_clamr_levels

        serial = run_clamr_levels(nx=12, steps=8)
        os.environ[ENV_VAR] = BEST_COMPILED
        parallel = run_clamr_levels(nx=12, steps=8, jobs=2)
        assert serial.keys() == parallel.keys()
        for level in serial:
            a, b = serial[level], parallel[level]
            assert np.array_equal(a.slice_precise, b.slice_precise), level
            assert a.mass_history == b.mass_history, level
            assert np.array_equal(a.field, b.field), level


class TestFallback:
    def test_numba_absent_falls_back_to_oracle(self, monkeypatch):
        # force the probe to fail, whatever this environment has
        monkeypatch.setattr(backends.numba_backend, "jitted_ops", lambda: None)
        monkeypatch.setattr(
            backends.numba_backend, "availability", lambda: (False, "forced absent")
        )
        backends._OPS_CACHE.clear()
        try:
            with kernel_backend("numba"):
                assert resolved_backend(np.float64) == "numpy"
                cfg = DamBreakConfig(nx=8, ny=8, max_level=1)
                got = ClamrSimulation(cfg, policy="mixed")
                got.run(6)
            ref = ClamrSimulation(DamBreakConfig(nx=8, ny=8, max_level=1), policy="mixed")
            ref.run(6)
            _assert_states_equal(ref.state, got.state, "(numba fallback)")
        finally:
            backends._OPS_CACHE.clear()

    def test_auto_resolves_to_something_runnable(self):
        with kernel_backend("auto"):
            name = resolved_backend(np.float64)
        assert name in ("numpy", "cext", "numba")

    def test_explicit_oracle_scatter_mode_disables_dispatch(self):
        # scatter_mode("add_at") is the *other* oracle switch; backends
        # must never engage under it, so the two escape hatches compose
        from repro.clamr.kernels import scatter_mode

        mesh, state, faces = _snapshot("full", nx=8)
        with scatter_mode("add_at"):
            ref, _ = _evolve(mesh, state, faces, finite_diff_vectorized, None, "numpy")
            got, _ = _evolve(mesh, state, faces, finite_diff_vectorized, None, "python")
        _assert_states_equal(ref, got, "(add_at)")


class TestCli:
    def test_backends_subcommand(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in BACKENDS:
            assert name in out

    def test_unknown_backend_exits_2_one_line(self, capsys):
        from repro.cli import main

        assert main(["clamr", "--nx", "8", "--steps", "2", "--backend", "tpu"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown kernel backend" in err

    def test_backend_flag_runs_and_exports_env(self, capsys):
        from repro.cli import main

        assert main(["clamr", "--nx", "8", "--steps", "3", "--backend", "python"]) == 0
        assert os.environ.get(ENV_VAR) == "python"
