"""The numerics flight recorder: determinism is the contract.

A flight file is only useful if it is *comparable*: identical
seed/config must give bitwise-identical ``flight.jsonl`` bytes and
digests at every stride, and the bounded ring buffer's stride-doubling
downsampling must be a pure function of the full series — never of
when the downsamples happened to fire.  These tests pin that contract
for the recorder itself, the simulation wiring (both mini-apps), the
ledger fidelity integration, and the ``repro flight`` CLI family.
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.telemetry.flight import (
    DANGER_RULES,
    FlightRecorder,
    compare_digests,
    field_signals,
    flight_compare,
    flight_counter_trace,
    flight_digest,
    flight_report,
    read_flight,
    write_flight,
)


def _signal(step: int) -> float:
    # deterministic, irregular, sign-changing — a worst case for resampling
    return math.sin(0.37 * step) * (1.0 + 0.01 * step)


def _drive(flight: FlightRecorder, nsteps: int) -> None:
    """Feed the recorder the way a simulation loop does."""
    for step in range(1, nsteps + 1):
        if flight.should_sample(step):
            flight.record(step, x=_signal(step), y=float(step))


class TestRecorder:
    def test_records_on_stride_only(self):
        f = FlightRecorder(stride=4)
        assert [s for s in range(1, 13) if f.should_sample(s)] == [4, 8, 12]
        with pytest.raises(ValueError):
            f.record(3, x=1.0)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(stride=0)
        with pytest.raises(ValueError):
            FlightRecorder(capacity=2)

    def test_nan_backfill_for_late_and_missing_signals(self):
        f = FlightRecorder(stride=1)
        f.record(1, a=1.0)
        f.record(2, a=2.0, b=20.0)  # b appears late: step 1 backfills NaN
        f.record(3, b=30.0)  # a goes missing: NaN-padded
        assert math.isnan(f.series("b")[0])
        assert math.isnan(f.series("a")[2])
        assert f.series("a")[:2] == [1.0, 2.0]

    def test_capacity_bounded_and_stride_doubles(self):
        f = FlightRecorder(stride=1, capacity=8)
        _drive(f, 100)
        assert f.nsamples <= 8
        assert f.stride == 16  # 1 -> 2 -> 4 -> 8 -> 16 over 100 steps
        assert f.base_stride == 1

    def test_downsample_is_pure_function_of_full_series(self):
        # the determinism property: a capacity-bounded buffer ends up
        # with exactly the full series filtered to the final stride,
        # regardless of when the intermediate downsamples fired
        for capacity, nsteps in [(8, 100), (16, 257), (4, 31)]:
            bounded = FlightRecorder(stride=1, capacity=capacity)
            _drive(bounded, nsteps)
            expected_steps = [
                s for s in range(1, nsteps + 1) if s % bounded.stride == 0
            ]
            assert bounded.steps == expected_steps
            assert bounded.series("x") == [_signal(s) for s in expected_steps]

    def test_unknown_signal_raises(self):
        f = FlightRecorder()
        f.record(1, x=1.0)
        with pytest.raises(KeyError):
            f.series("nope")


class TestPersistence:
    def test_round_trip_is_byte_identical(self, tmp_path):
        f = FlightRecorder(stride=2, capacity=16, label="rt")
        for step in range(2, 65, 2):
            if f.should_sample(step):
                f.record(step, x=_signal(step), weird=math.inf if step == 8 else math.nan)
        p1 = write_flight(f, tmp_path / "a.jsonl")
        f2 = read_flight(p1)
        p2 = write_flight(f2, tmp_path / "b.jsonl")
        assert p1.read_bytes() == p2.read_bytes()
        assert flight_digest(f) == flight_digest(f2)

    def test_reader_refuses_newer_schema(self, tmp_path):
        f = FlightRecorder(stride=1)
        f.record(1, x=1.0)
        path = write_flight(f, tmp_path / "f.jsonl")
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["version"] = 99
        path.write_text("\n".join([json.dumps(meta), *lines[1:]]) + "\n")
        with pytest.raises(ValueError, match="newer"):
            read_flight(path)

    def test_reader_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "flight_sample", "step": 1}\n')
        with pytest.raises(ValueError):
            read_flight(path)


class TestDigest:
    def _flight(self):
        f = FlightRecorder(stride=1, label="d")
        for step, v in enumerate([0.5, 9.0, -3.0, 9.0], start=1):
            f.record(step, headroom_bits=v, plain=v)
        return f

    def test_extremes_and_argsteps(self):
        d = flight_digest(self._flight())
        sig = d["signals"]["plain"]
        assert sig["min"] == -3.0 and sig["argmin_step"] == 3
        # earliest-tie argmax
        assert sig["max"] == 9.0 and sig["argmax_step"] == 2
        assert sig["first"] == 0.5 and sig["last"] == 9.0

    def test_crossings_counted_for_danger_signals(self):
        d = flight_digest(self._flight())
        # headroom_bits danger is < 8: values .5, 9, -3, 9 cross in twice
        assert DANGER_RULES["headroom_bits"] == ("lt", 8.0)
        assert d["signals"]["headroom_bits"]["crossings"] == 2
        assert "crossings" not in d["signals"]["plain"]

    def test_hash_covers_content(self):
        a = flight_digest(self._flight())
        f = self._flight()
        f.record(5, headroom_bits=1.0, plain=1.0)
        b = flight_digest(f)
        assert a["hash"] != b["hash"]
        assert a["hash"] == flight_digest(self._flight())["hash"]

    def test_compare_digests_exact_and_rtol(self):
        a = flight_digest(self._flight())
        b = json.loads(json.dumps(a))  # round-tripped copy
        assert compare_digests(a, b) == []
        b["signals"]["plain"]["max"] = 9.0 * (1 + 1e-9)
        b["hash"] = "tampered"
        assert compare_digests(a, b)  # exact mode: hash mismatch
        assert compare_digests(a, b, rtol=1e-6) == []
        b["signals"]["plain"]["max"] = 11.0
        assert any("plain.max" in p for p in compare_digests(a, b, rtol=1e-6))


class TestFieldSignals:
    def test_counts_and_fractions(self):
        arrays = {
            "a": np.array([1.0, np.nan, np.inf, 2.0], dtype=np.float64),
            "b": np.array([1e-310, 1.0], dtype=np.float64),  # one subnormal
        }
        s = field_signals(arrays, np.dtype(np.float64))
        assert s["nan_count"] == 1.0
        assert s["inf_count"] == 1.0
        assert s["subnormal_fraction"] == 0.5
        assert math.isfinite(s["headroom_bits"]) and s["headroom_bits"] > 0

    def test_empty_and_all_nan(self):
        s = field_signals({"a": np.array([np.nan, np.nan])}, np.dtype(np.float32))
        assert s["nan_count"] == 2.0
        assert math.isnan(s["headroom_bits"]) or s["headroom_bits"] > 0


class TestReportAndCompare:
    def _flight(self, n=12, scale=1.0):
        f = FlightRecorder(stride=1, label="rep")
        for step in range(1, n + 1):
            f.record(step, dt=scale * _signal(step), headroom_bits=100.0)
        return f

    def test_report_renders_sparklines(self):
        text = flight_report(self._flight(), width=20)
        assert "dt" in text and "headroom_bits" in text
        assert any(ch in text for ch in "▁▂▃▄▅▆▇█")
        assert "digest hash:" in text

    def test_compare_equal_flights(self):
        _, mismatches = flight_compare(self._flight(), self._flight())
        assert mismatches == 0

    def test_compare_flags_differences_and_rtol(self):
        a, b = self._flight(), self._flight(scale=1.0 + 1e-9)
        _, strict = flight_compare(a, b)
        assert strict > 0
        _, loose = flight_compare(a, b, rtol=1e-6)
        assert loose == 0

    def test_compare_counts_missing_signal(self):
        a = self._flight()
        b = FlightRecorder(stride=1)
        for step in range(1, 13):
            b.record(step, dt=a.series("dt")[step - 1])
        _, mismatches = flight_compare(a, b)
        assert mismatches == 1  # headroom_bits missing on one side

    def test_counter_trace_tracks(self):
        trace = flight_counter_trace(self._flight())
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters and all(e["name"].startswith("flight/") for e in counters)
        # counter timestamps are step numbers, not wall-clock
        assert sorted({e["ts"] for e in counters}) == [float(s) for s in range(1, 13)]
        assert trace["otherData"]["flight_digest"]["hash"]


def _clamr_flight(stride, steps=16, **kw):
    from repro.clamr import ClamrSimulation, DamBreakConfig
    from repro.telemetry import Telemetry

    flight = FlightRecorder(stride=stride, label="t")
    tel = Telemetry(label="t", watch_stride=4, flight=flight)
    cfg = DamBreakConfig(nx=12, ny=12, max_level=1)
    result = ClamrSimulation(cfg, policy="mixed", telemetry=tel, **kw).run(steps)
    return result, tel, cfg


class TestSimulationWiring:
    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_clamr_bitwise_deterministic_at_every_stride(self, tmp_path, stride):
        _, tel_a, _ = _clamr_flight(stride)
        _, tel_b, _ = _clamr_flight(stride)
        pa = write_flight(tel_a.flight, tmp_path / "a.jsonl")
        pb = write_flight(tel_b.flight, tmp_path / "b.jsonl")
        assert pa.read_bytes() == pb.read_bytes()
        assert flight_digest(tel_a.flight)["hash"] == flight_digest(tel_b.flight)["hash"]

    def test_clamr_signals_present_and_sane(self):
        result, tel, _ = _clamr_flight(2, steps=16)
        f = tel.flight
        for name in ("dt", "cfl", "ncells", "state_bits", "compute_bits",
                     "cancellation_digits", "conservation_drift",
                     "headroom_bits", "subnormal_fraction", "nan_count",
                     "inf_count"):
            assert name in f.signal_names
        assert f.steps == [s for s in range(1, 17) if s % 2 == 0]
        assert f.series("ncells")[-1] == float(result.ncells_history[-1])
        assert all(0.0 < c < 1.0 for c in f.series("cfl"))
        assert f.series("state_bits")[0] == 32.0  # mixed: float32 state
        assert f.series("compute_bits")[0] == 64.0

    def test_self_flight_deterministic(self, tmp_path):
        from repro.self_ import SelfSimulation, ThermalBubbleConfig
        from repro.telemetry import Telemetry

        def run():
            tel = Telemetry(label="s", watch_stride=4,
                            flight=FlightRecorder(stride=2, label="s"))
            cfg = ThermalBubbleConfig(nex=2, ney=2, nez=2, order=3)
            SelfSimulation(cfg, precision="single", telemetry=tel).run(10)
            return tel.flight

        fa, fb = run(), run()
        pa = write_flight(fa, tmp_path / "a.jsonl")
        pb = write_flight(fb, tmp_path / "b.jsonl")
        assert pa.read_bytes() == pb.read_bytes()
        assert fa.nsamples == 5
        assert fa.series("state_bits")[0] == 32.0
        assert max(fa.series("conservation_drift")) < 1e-6

    def test_no_flight_means_no_sampling_cost_path(self):
        from repro.clamr import ClamrSimulation, DamBreakConfig
        from repro.telemetry import Telemetry

        tel = Telemetry(label="t")
        assert tel.flight is None
        cfg = DamBreakConfig(nx=8, ny=8, max_level=1)
        ClamrSimulation(cfg, policy="mixed", telemetry=tel).run(4)  # no crash


class TestLedgerIntegration:
    def test_flight_digest_in_fidelity_only_when_enabled(self):
        from repro.ledger.runner import run_workload

        plain, _ = run_workload("clamr", nx=12, steps=8)
        flighted, tel = run_workload("clamr", nx=12, steps=8, flight_stride=2)
        assert "flight" not in plain.fidelity
        assert "flight" not in plain.config["run"]
        assert flighted.fidelity["flight"]["hash"] == flight_digest(tel.flight)["hash"]
        assert flighted.config["run"]["flight"] == {"stride": 2, "capacity": 512}
        # flight sampling cadence is part of the workload identity
        assert plain.workload_key != flighted.workload_key

    def test_flightless_fingerprint_unchanged_by_feature(self):
        # a run without a flight recorder must hash exactly as before the
        # flight recorder existed: nothing flight-shaped in the config
        from repro.ledger.runner import run_workload

        record, _ = run_workload("self", elems=2, order=3, steps=6)
        assert "flight" not in record.config["run"]
        assert "flight" not in record.fidelity

    def test_digest_survives_record_json_round_trip(self):
        from repro.ledger.record import RunRecord
        from repro.ledger.runner import run_workload

        record, tel = run_workload("clamr", nx=12, steps=8, flight_stride=2)
        back = RunRecord.from_json(record.to_json())
        assert back.fidelity["flight"] == flight_digest(tel.flight)


class TestCli:
    def _run(self, tmp_path, *extra):
        from repro.cli import main

        return main([
            "clamr", "--nx", "12", "--steps", "12", "--max-level", "1",
            "--flight-stride", "2", *extra,
        ])

    def test_flight_report_cli(self, tmp_path, capsys):
        from repro.cli import main

        assert self._run(tmp_path, "--flight", str(tmp_path / "f.jsonl")) == 0
        assert main(["flight", "report", str(tmp_path / "f.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "digest hash:" in out and any(ch in out for ch in "▁▂▃▄▅▆▇█")

    def test_flight_compare_and_digest_cli(self, tmp_path, capsys):
        from repro.cli import main

        self._run(tmp_path, "--flight", str(tmp_path / "a.jsonl"))
        self._run(tmp_path, "--flight", str(tmp_path / "b.jsonl"))
        assert main(["flight", "compare", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")]) == 0
        assert main(["flight", "digest", str(tmp_path / "a.jsonl"),
                     "--out", str(tmp_path / "a.digest.json")]) == 0
        capsys.readouterr()
        # digest-vs-flight comparison (the CI golden-digest path)
        assert main(["flight", "compare", str(tmp_path / "a.digest.json"),
                     str(tmp_path / "b.jsonl")]) == 0
        assert "match" in capsys.readouterr().out

    def test_flight_compare_mismatch_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        self._run(tmp_path, "--flight", str(tmp_path / "a.jsonl"))
        # a different precision policy: state_bits (at least) must differ
        assert main([
            "clamr", "--nx", "12", "--steps", "12", "--max-level", "1",
            "--policy", "mixed", "--flight-stride", "2",
            "--flight", str(tmp_path / "c.jsonl"),
        ]) == 0
        capsys.readouterr()
        assert main(["flight", "compare", str(tmp_path / "a.jsonl"),
                     str(tmp_path / "c.jsonl")]) == 1

    def test_flight_export_cli(self, tmp_path, capsys):
        from repro.cli import main

        self._run(tmp_path, "--flight", str(tmp_path / "a.jsonl"))
        out = tmp_path / "a.trace.json"
        assert main(["flight", "export", str(tmp_path / "a.jsonl"),
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "C" for e in doc["traceEvents"])

    def test_missing_file_exits_2(self, capsys):
        from repro.cli import main

        assert main(["flight", "report", "/nonexistent/f.jsonl"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_trace_flight_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.jsonl"
        assert main(["trace", "clamr", "--nx", "12", "--steps", "8",
                     "--max-level", "1", "--flight", str(out),
                     "--flight-stride", "2"]) == 0
        assert read_flight(out).nsamples == 4

    def test_ledger_record_flight_stride(self, tmp_path, capsys):
        from repro.cli import main

        ledger = tmp_path / "led.jsonl"
        assert main(["ledger", "record", "clamr", "--ledger", str(ledger),
                     "--nx", "12", "--steps", "8", "--flight-stride", "2"]) == 0
        records = [json.loads(line) for line in ledger.read_text().splitlines()]
        assert records[0]["fidelity"]["flight"]["nsamples"] == 4
