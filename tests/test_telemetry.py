"""Tests for the telemetry subsystem: spans, metrics, numerical
watchpoints, exporters, and the simulation integrations."""

import json
import math

import numpy as np
import pytest

from repro.clamr import ClamrSimulation, DamBreakConfig
from repro.self_ import SelfSimulation, ThermalBubbleConfig
from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    event_report,
    read_jsonl,
    span_summary,
    span_tree,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.numerics import NumericsWatch
from repro.telemetry.spans import NULL_SPAN, NullSpan, Tracer


class TestSpans:
    def test_nesting_and_ordering(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner_a"):
                pass
            with tr.span("inner_b"):
                pass
        assert [s.name for s in tr.spans] == ["outer", "inner_a", "inner_b"]
        outer, a, b = tr.spans
        assert outer.parent_id is None
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        # ids are monotonic in open order
        assert outer.span_id < a.span_id < b.span_id

    def test_durations_are_nonnegative_and_nested(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                sum(range(1000))
        outer, inner = tr.spans
        assert 0 <= inner.duration_s <= outer.duration_s
        assert inner.start_s >= outer.start_s
        assert inner.end_s <= outer.end_s

    def test_counters_accumulate_and_set(self):
        tr = Tracer()
        with tr.span("k", flops=100) as sp:
            sp.add(flops=50, bytes=8)
            sp.set(dt=0.5)
            sp.set(dt=0.25)
        (s,) = tr.spans
        assert s.counters["flops"] == 150
        assert s.counters["bytes"] == 8
        assert s.counters["dt"] == 0.25

    def test_current_tracks_open_stack(self):
        tr = Tracer()
        assert tr.current() is None
        with tr.span("outer"):
            with tr.span("inner"):
                assert tr.current().name == "inner"
            assert tr.current().name == "outer"
        assert tr.current() is None

    def test_exception_still_closes_span(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("doomed"):
                raise ValueError("boom")
        (s,) = tr.spans
        assert s.end_s is not None
        assert tr.current() is None

    def test_children_and_roots(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("child"):
                pass
        root = tr.roots()[0]
        assert [c.name for c in tr.children(root)] == ["child"]


class TestDisabledPath:
    def test_null_span_supports_full_surface(self):
        sp = NULL_SPAN
        with sp as inner:
            inner.add(flops=1)
            inner.set(dt=0.1)
        assert isinstance(inner, NullSpan)

    def test_null_telemetry_records_nothing(self):
        tel = NULL_TELEMETRY
        assert tel.enabled is False
        with tel.span("kernel", flops=10) as sp:
            sp.add(bytes=4)
        tel.scan("H", np.array([np.nan]))
        tel.check_cancellation("mass", 1e8, 1e-8)
        assert tel.tracer is None
        assert tel.numerics.events == []

    def test_null_telemetry_is_shared_singleton(self):
        assert NullTelemetry() is not None
        assert NULL_TELEMETRY.metrics.counter("x") is NULL_TELEMETRY.metrics.gauge("y")

    def test_simulations_default_to_disabled(self):
        sim = ClamrSimulation(DamBreakConfig(nx=8, ny=8, max_level=0))
        assert sim.telemetry is None
        sim.run(3)  # no tracer allocated, nothing recorded


class TestMetrics:
    def test_counter(self):
        c = Counter("flops")
        c.add(10)
        c.add(5)
        assert c.value == 15
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge(self):
        g = Gauge("ncells")
        g.set(10.0)
        g.set(4.0)
        g.set(7.0)
        assert g.value == 7.0
        assert g.min == 4.0 and g.max == 10.0
        assert g.updates == 3

    def test_histogram_exact_stats(self):
        h = Histogram("dt")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.min == 1.0 and h.max == 4.0
        assert h.mean == 2.5
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        assert 2.0 <= h.percentile(50) <= 3.0

    def test_histogram_reservoir_is_bounded(self):
        h = Histogram("dt", reservoir=16)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert len(h.samples) <= 16

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        snap = reg.snapshot()
        assert snap["a"]["kind"] == "counter"


class TestNumericsWatch:
    def test_nan_detection(self):
        w = NumericsWatch(stride=1)
        a = np.ones(64)
        a[13] = np.nan
        events = w.scan("H", a, step=0)
        kinds = {e.kind for e in events}
        assert "nan" in kinds
        assert w.fatal_events

    def test_inf_detection(self):
        w = NumericsWatch(stride=1)
        a = np.ones(64)
        a[7] = np.inf
        events = w.scan("U", a, step=0)
        assert any(e.kind == "inf" for e in events)

    def test_subnormal_detection(self):
        w = NumericsWatch(stride=1)
        tiny = np.finfo(np.float32).tiny
        a = np.full(64, tiny / 4, dtype=np.float32)  # all subnormal
        events = w.scan("V", a, step=0)
        assert any(e.kind == "subnormal" for e in events)
        assert not w.fatal_events  # warning, not fatal

    def test_overflow_headroom(self):
        w = NumericsWatch(stride=1)
        big = np.finfo(np.float32).max / 10.0
        a = np.full(8, big, dtype=np.float32)
        events = w.scan("H", a, step=0)
        assert any(e.kind == "overflow_risk" for e in events)

    def test_clean_array_is_silent(self):
        w = NumericsWatch(stride=1)
        assert w.scan("H", np.linspace(0.5, 2.0, 64), step=0) == []

    def test_stride_gating(self):
        w = NumericsWatch(stride=4)
        assert w.should_scan(0)
        assert not w.should_scan(1)
        assert w.should_scan(4)
        w0 = NumericsWatch(stride=0)
        assert not w0.should_scan(0)

    def test_cancellation(self):
        w = NumericsWatch(stride=1, cancellation_digits=6.0)
        # 12 digits cancelled: sum of |x| is 1e12 times the total
        ev = w.check_cancellation("mass", abs_sum=1e12, total=1.0, step=3)
        assert ev is not None and ev.kind == "cancellation"
        assert ev.value == pytest.approx(12.0)
        # benign sum produces nothing
        assert w.check_cancellation("mass", abs_sum=10.0, total=9.0) is None

    def test_dtype_override_vs_promoted_array(self):
        # storage dtype float32, scanned as float64 after promotion: the
        # headroom check must be done against the *policy* dtype
        w = NumericsWatch(stride=1)
        big = float(np.finfo(np.float32).max) / 10.0
        a = np.full(8, big, dtype=np.float64)
        events = w.scan("H", a, dtype=np.float32, step=0)
        assert any(e.kind == "overflow_risk" for e in events)
        assert w.scan("H2", a, dtype=np.float64, step=0) == []


class TestExporters:
    def _sample(self):
        tel = Telemetry(label="unit/test", watch_stride=1)
        with tel.span("run", steps=2):
            with tel.span("kernel", flops=100, state_bytes=64) as sp:
                sp.set(headroom=float("inf"))
            a = np.ones(8)
            a[0] = np.nan
            tel.scan("H", a, step=0)
        tel.metrics.counter("kernel.flops").add(100)
        tel.metrics.gauge("ncells").set(64.0)
        tel.metrics.histogram("dt").observe(0.25)
        return tel

    def test_jsonl_round_trip(self, tmp_path):
        tel = self._sample()
        path = write_jsonl(tel, tmp_path / "t.jsonl")
        data = read_jsonl(path)
        assert data.label == "unit/test"
        assert [s.name for s in data.spans] == [s.name for s in tel.tracer.spans]
        got = {(s.name, s.span_id, s.parent_id) for s in data.spans}
        want = {(s.name, s.span_id, s.parent_id) for s in tel.tracer.spans}
        assert got == want
        assert data.spans[1].counters["flops"] == 100
        assert [e.kind for e in data.events] == [e.kind for e in tel.numerics.events]
        assert data.metrics["kernel.flops"]["value"] == 100
        assert data.metrics["ncells"]["kind"] == "gauge"

    def test_jsonl_round_trips_nonfinite_values(self, tmp_path):
        # JSON has no inf/nan literals; the writer string-encodes them and
        # the reader must restore real floats
        tel = self._sample()
        data = read_jsonl(write_jsonl(tel, tmp_path / "t.jsonl"))
        kernel = next(s for s in data.spans if s.name == "kernel")
        assert kernel.counters["headroom"] == float("inf")

    def test_chrome_trace_shape(self):
        tel = self._sample()
        doc = to_chrome_trace(tel)
        assert "traceEvents" in doc
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert {e["name"] for e in complete} == {"run", "kernel"}
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert any(e["name"].startswith("nan:") for e in instants)

    def test_chrome_trace_file_is_valid_json(self, tmp_path):
        tel = self._sample()
        path = write_chrome_trace(tel, tmp_path / "t.trace.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_renderers_run_on_live_and_persisted(self, tmp_path):
        tel = self._sample()
        data = read_jsonl(write_jsonl(tel, tmp_path / "t.jsonl"))
        for obj in (tel, data):
            assert "kernel" in span_tree(obj)
            assert "kernel" in span_summary(obj).render()
            assert "nan" in event_report(obj)

    def test_empty_trace_renders(self):
        tel = Telemetry(label="empty")
        assert span_tree(tel) == "(no spans recorded)"
        assert "none" in event_report(tel)


class TestExporterRoundTrips:
    """Non-finite floats must survive every exporter path, and the Chrome
    trace must satisfy the trace-event schema (Perfetto rejects files with
    bare ``Infinity``/``NaN`` literals or malformed complete events)."""

    def _nonfinite_sample(self):
        tel = Telemetry(label="unit/nonfinite", watch_stride=1)
        with tel.span("kernel", flops=1e6) as sp:
            sp.set(pos_inf=float("inf"), neg_inf=float("-inf"), not_a_num=float("nan"))
        # a cancellation event against total == 0.0 carries value == inf
        tel.numerics.check_cancellation("mass", abs_sum=1.0, total=0.0)
        a = np.ones(4)
        a[0] = np.inf
        tel.scan("H", a, step=0)
        tel.metrics.gauge("headroom").set(float("inf"))
        return tel

    def test_jsonl_span_counters_round_trip_all_nonfinite(self, tmp_path):
        tel = self._nonfinite_sample()
        data = read_jsonl(write_jsonl(tel, tmp_path / "t.jsonl"))
        counters = next(s for s in data.spans if s.name == "kernel").counters
        assert counters["pos_inf"] == float("inf")
        assert counters["neg_inf"] == float("-inf")
        assert math.isnan(counters["not_a_num"])
        assert counters["flops"] == 1e6  # finite values untouched

    def test_jsonl_event_values_round_trip_nonfinite(self, tmp_path):
        tel = self._nonfinite_sample()
        data = read_jsonl(write_jsonl(tel, tmp_path / "t.jsonl"))
        cancel = next(e for e in data.events if e.kind == "cancellation")
        assert cancel.value == float("inf")
        assert isinstance(cancel.value, float)

    def test_jsonl_metrics_round_trip_nonfinite(self, tmp_path):
        tel = self._nonfinite_sample()
        data = read_jsonl(write_jsonl(tel, tmp_path / "t.jsonl"))
        assert data.metrics["headroom"]["value"] == float("inf")

    def test_jsonl_lines_are_strictly_valid_json(self, tmp_path):
        # every line must parse under allow_nan=False: no bare Infinity/NaN
        path = write_jsonl(self._nonfinite_sample(), tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line, parse_constant=lambda c: pytest.fail(f"bare {c} in JSONL"))

    def test_chrome_trace_complete_events_carry_required_fields(self):
        tel = self._nonfinite_sample()
        doc = to_chrome_trace(tel)
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert complete
        for e in complete:
            for key in ("ph", "ts", "dur", "pid", "tid", "name"):
                assert key in e, f"complete event missing {key!r}: {e}"
            assert isinstance(e["ts"], float) and isinstance(e["dur"], float)

    def test_chrome_trace_instants_carry_required_fields(self):
        tel = self._nonfinite_sample()
        doc = to_chrome_trace(tel)
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert instants
        for e in instants:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in e, f"instant event missing {key!r}: {e}"

    def test_chrome_trace_serializes_without_nonfinite_literals(self, tmp_path):
        tel = self._nonfinite_sample()
        # allow_nan=False raises if any non-finite float survived cleaning
        text = json.dumps(to_chrome_trace(tel), allow_nan=False)
        assert "Infinity" not in text and "NaN" not in text

    def test_clamr_trace_files_round_trip(self, tmp_path):
        # end-to-end: a real traced run through both file exporters
        tel = Telemetry(label="clamr/rt", watch_stride=4)
        cfg = DamBreakConfig(nx=12, ny=12, max_level=1)
        ClamrSimulation(cfg, policy="mixed", telemetry=tel).run(8)
        data = read_jsonl(write_jsonl(tel, tmp_path / "run.jsonl"))
        assert len(data.spans) == len(tel.tracer.spans)
        doc = json.loads(write_chrome_trace(tel, tmp_path / "run.trace.json").read_text())
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(complete) == len(tel.tracer.spans)
        for e in complete:
            assert {"ph", "ts", "dur", "pid", "tid"} <= set(e)


class TestClamrIntegration:
    @pytest.fixture(scope="class")
    def traced_run(self):
        tel = Telemetry(label="clamr/test", watch_stride=4)
        sim = ClamrSimulation(
            DamBreakConfig(nx=16, ny=16, max_level=1), policy="full", telemetry=tel
        )
        res = sim.run(20)
        return tel, res

    def test_per_kernel_spans_exist(self, traced_run):
        tel, _ = traced_run
        names = {s.name for s in tel.tracer.spans}
        assert {
            "clamr/run",
            "clamr/step",
            "clamr/compute_timestep",
            "clamr/finite_diff_vectorized",
            "clamr/regrid",
            "clamr/mass_sum",
        } <= names

    def test_span_flops_match_profile(self, traced_run):
        tel, res = traced_run
        span_flops = sum(
            s.counters.get("flops", 0)
            for s in tel.tracer.spans
            if s.name in ("clamr/compute_timestep", "clamr/finite_diff_vectorized")
        )
        assert span_flops == res.profile.flops
        span_bytes = sum(
            s.counters.get("state_bytes", 0)
            for s in tel.tracer.spans
            if s.name in ("clamr/compute_timestep", "clamr/finite_diff_vectorized")
        )
        assert span_bytes == res.profile.state_bytes

    def test_no_numerical_events_on_healthy_run(self, traced_run):
        tel, _ = traced_run
        assert tel.numerics.fatal_events == []

    def test_results_unchanged_by_tracing(self, traced_run):
        _, traced = traced_run
        plain = ClamrSimulation(
            DamBreakConfig(nx=16, ny=16, max_level=1), policy="full"
        ).run(20)
        np.testing.assert_array_equal(traced.slice_precise, plain.slice_precise)
        assert traced.profile.flops == plain.profile.flops

    def test_muscl_spans(self):
        tel = Telemetry(label="clamr/muscl")
        sim = ClamrSimulation(
            DamBreakConfig(nx=16, ny=16, max_level=1),
            policy="full",
            scheme="muscl",
            telemetry=tel,
        )
        sim.run(5)
        assert any(s.name == "clamr/finite_diff_muscl" for s in tel.tracer.spans)


class TestSelfIntegration:
    def test_spans_and_rk3_structure(self):
        tel = Telemetry(label="self/test", watch_stride=4)
        cfg = ThermalBubbleConfig(nex=2, ney=2, nez=2, order=2)
        res = SelfSimulation(cfg, precision="double", telemetry=tel).run(4)
        assert len(tel.tracer.by_name("self/step")) == 4
        # low-storage RK3: three rhs evaluations per step
        assert len(tel.tracer.by_name("self/rhs")) == 12
        span_flops = sum(
            s.counters.get("flops", 0) for s in tel.tracer.by_name("self/rk3_step")
        )
        assert span_flops == res.profile.flops
        assert tel.numerics.fatal_events == []


class TestInvocationCounting:
    def test_muscl_counts_two_launches(self):
        from repro.clamr.kernels import FaceLists
        from repro.clamr.mesh import AmrMesh
        from repro.clamr.muscl import finite_diff_muscl
        from repro.clamr.state import ShallowWaterState
        from repro.machine.counters import KernelCounters
        from repro.precision.policy import PrecisionPolicy

        mesh = AmrMesh.uniform(8, 8, max_level=0)
        state = ShallowWaterState.zeros(mesh.ncells, PrecisionPolicy.from_level("full"))
        state.H[:] = 1.0
        counters = KernelCounters()
        finite_diff_muscl(mesh, state, 1e-4, FaceLists.from_mesh(mesh), counters)
        assert counters.invocations == 2

    def test_zero_invocation_traffic_charge(self):
        from repro.machine.counters import KernelCounters

        c = KernelCounters()
        c.add(fixed_bytes=1024, invocations=0)
        assert c.invocations == 0
        assert c.fixed_bytes == 1024

    def test_clamr_run_invocations_are_launches_only(self):
        # 10 steps at nx=8/level0: 10 timestep + 10 kernel launches,
        # regrid cadence adds none (regrid is not a counted kernel) and the
        # per-step mesh-traffic charge must not inflate the count.
        sim = ClamrSimulation(DamBreakConfig(nx=8, ny=8, max_level=0), policy="full")
        res = sim.run(10)
        assert res.profile.invocations == 20
