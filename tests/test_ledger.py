"""Tests for the run ledger & regression observatory (``repro.ledger``).

The acceptance-critical gate tests work on *perturbed clones* of real run
records: the baseline is a real record with deterministic ±2% timing
jitter applied, the regression is the same record with every span timing
scaled by ~20% (perf) or with a forced NaN watchpoint count (fidelity).
Perturbing recorded timings instead of re-running slowly keeps the tests
deterministic on a noisy CI box while still exercising the full
record → ledger → gate → exit-code path.
"""

import json

import pytest

from repro.cli import main
from repro.ledger import (
    LEDGER_SCHEMA_VERSION,
    GateConfig,
    KernelSummary,
    Ledger,
    RunRecord,
    bench_document,
    compare_table,
    fingerprint_of,
    gate_ledger,
    gate_record,
    ledger_summary,
    mad,
    median,
    noise_model,
    regression_threshold,
    run_workload,
    sparkline,
    trend_table,
    validate_bench_document,
    workload_key_of,
    write_bench,
)
from repro.ledger.store import resolve_ledger_path

# deliberately tiny: the gate tests perturb recorded timings rather than
# relying on the workload being slow enough to time reliably
SMOKE = dict(nx=12, steps=12, max_level=1, policy="mixed")


@pytest.fixture(scope="module")
def clamr_runs():
    """Two genuine re-runs of the identical workload (determinism subject)."""
    r1, _ = run_workload("clamr", seed=0, **SMOKE)
    r2, _ = run_workload("clamr", seed=0, **SMOKE)
    return r1, r2


def clone(record: RunRecord) -> RunRecord:
    """Deep copy through the persistence format (what the gate really sees)."""
    return RunRecord.from_json(record.to_json())


def scale_timings(record: RunRecord, factor: float) -> RunRecord:
    """Clone with every recorded span timing scaled by ``factor``."""
    c = clone(record)
    c.wall_s *= factor
    c.kernel_s *= factor
    c.kernels = {
        name: KernelSummary(
            calls=k.calls,
            total_s=k.total_s * factor,
            mean_ms=k.mean_ms * factor,
            flops=k.flops,
            state_bytes=k.state_bytes,
        )
        for name, k in c.kernels.items()
    }
    return c


def jittered_baseline(record: RunRecord, factors=(0.98, 1.0, 1.02)) -> list[RunRecord]:
    return [scale_timings(record, f) for f in factors]


# ---------------------------------------------------------------------------
# determinism: fingerprints and bitwise conservation (satellite 4)
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_identical_runs_share_fingerprint(self, clamr_runs):
        r1, r2 = clamr_runs
        assert r1.fingerprint == r2.fingerprint
        assert r1.workload_key == r2.workload_key

    def test_identical_runs_conserve_bitwise(self, clamr_runs):
        # the double-double mass sums must agree to the last bit, and the
        # hex encoding is the representation that survives JSON round-trips
        r1, r2 = clamr_runs
        assert r1.fidelity["conservation_first_hex"] == r2.fidelity["conservation_first_hex"]
        assert r1.fidelity["conservation_last_hex"] == r2.fidelity["conservation_last_hex"]
        back = clone(r1)
        assert back.fidelity["conservation_last_hex"] == r1.fidelity["conservation_last_hex"]
        assert float.fromhex(back.fidelity["conservation_last_hex"]) == pytest.approx(
            r1.fidelity["conservation_last"], abs=0.0
        )

    def test_differing_policy_changes_fingerprint(self, clamr_runs):
        r1, _ = clamr_runs
        other, _ = run_workload("clamr", seed=0, **{**SMOKE, "policy": "full"})
        assert other.fingerprint != r1.fingerprint
        assert other.workload_key != r1.workload_key

    def test_run_shape_knobs_enter_the_key(self, clamr_runs):
        # steps / scheme / watch stride change the workload, so they must
        # change the identity — otherwise the gate compares a 1000-step
        # MUSCL run against the 40-step Rusanov baseline
        r1, _ = clamr_runs
        for knob in (dict(steps=24), dict(scheme="muscl"), dict(watch_stride=1)):
            other, _ = run_workload("clamr", seed=0, **{**SMOKE, **knob})
            assert other.workload_key != r1.workload_key, knob
            assert other.fingerprint != r1.fingerprint, knob
        assert r1.config["run"]["steps"] == SMOKE["steps"]
        assert r1.config["run"]["scheme"] == "rusanov"

    def test_vectorized_flag_enters_the_key(self):
        from repro.clamr import ClamrSimulation, DamBreakConfig
        from repro.ledger import record_from_clamr
        from repro.telemetry import Telemetry

        cfg = DamBreakConfig(nx=8, ny=8, max_level=1)
        records = {}
        for vectorized in (True, False):
            tel = Telemetry(label="vec-test")
            res = ClamrSimulation(
                cfg, policy="mixed", vectorized=vectorized, telemetry=tel
            ).run(4)
            records[vectorized] = record_from_clamr(res, tel, cfg)
        assert records[True].workload_key != records[False].workload_key
        assert records[True].config["run"]["vectorized"] is True
        assert records[False].config["run"]["vectorized"] is False

    def test_seed_enters_the_key(self):
        cfg = {"nx": 12}
        assert workload_key_of("clamr", cfg, "mixed", 0) != workload_key_of(
            "clamr", cfg, "mixed", 1
        )

    def test_machine_enters_fingerprint_but_not_key(self):
        cfg = {"nx": 12}
        fp_a = fingerprint_of("clamr", cfg, "mixed", 0, {"cpu": "a"}, "sha")
        fp_b = fingerprint_of("clamr", cfg, "mixed", 0, {"cpu": "b"}, "sha")
        assert fp_a != fp_b  # machine distinguishes full run identity...
        # ...but the workload key has no machine argument at all, so a
        # committed baseline matches the same workload on any machine
        assert workload_key_of("clamr", cfg, "mixed", 0)

    def test_timings_do_not_enter_identity(self, clamr_runs):
        r1, _ = clamr_runs
        slow = scale_timings(r1, 10.0)
        assert slow.fingerprint == r1.fingerprint
        assert slow.workload_key == r1.workload_key

    def test_self_workload_records(self):
        rec, _ = run_workload("self", seed=0, elems=2, order=2, steps=4)
        assert rec.workload == "self"
        assert rec.fidelity["conservation_last_hex"]
        rec2, _ = run_workload("self", seed=0, elems=2, order=2, steps=4)
        assert rec2.fingerprint == rec.fingerprint
        assert rec2.fidelity["conservation_last_hex"] == rec.fidelity["conservation_last_hex"]


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------


class TestStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad_is_outlier_robust(self):
        clean = [1.0, 1.01, 0.99, 1.02, 0.98]
        spiked = clean + [50.0]
        assert mad(spiked) < 0.05  # one spike cannot blow up the spread

    def test_threshold_relative_floor_governs_tight_baselines(self):
        model = noise_model([1.0, 1.0, 1.0])
        assert regression_threshold(model, rel_floor=0.10, z=5.0) == pytest.approx(1.10)

    def test_threshold_mad_band_governs_noisy_baselines(self):
        model = noise_model([1.0, 1.3, 0.7, 1.25, 0.75])
        thr = regression_threshold(model, rel_floor=0.10, z=5.0)
        assert thr > 1.10  # observed scatter widens the band past the floor
        assert thr == pytest.approx(model.median + 5.0 * 1.4826 * model.mad)


# ---------------------------------------------------------------------------
# store
# ---------------------------------------------------------------------------


class TestStore:
    def test_path_resolution(self, tmp_path):
        assert resolve_ledger_path(tmp_path / "x.jsonl") == tmp_path / "x.jsonl"
        assert resolve_ledger_path(tmp_path) == tmp_path / "ledger.jsonl"

    def test_append_and_reload(self, tmp_path, clamr_runs):
        r1, r2 = clamr_runs
        ledger = Ledger(tmp_path / "runs")
        ledger.append(clone(r1))
        ledger.append(clone(r2))
        fresh = Ledger(tmp_path / "runs")  # re-read from disk
        assert len(fresh) == 2
        assert fresh.workload_keys() == [r1.workload_key]
        assert fresh.latest(r1.workload_key).fingerprint == r2.fingerprint
        assert len(fresh.tail(r1.workload_key, 1)) == 1

    def test_fingerprint_prefix_lookup(self, tmp_path, clamr_runs):
        r1, _ = clamr_runs
        ledger = Ledger(tmp_path / "runs")
        ledger.append(clone(r1))
        assert ledger.by_fingerprint(r1.fingerprint[:6])
        assert ledger.by_fingerprint("zz" * 20) == []

    def test_ambiguous_prefix_raises(self, tmp_path, clamr_runs):
        r1, _ = clamr_runs
        a, b = clone(r1), clone(r1)
        a.fingerprint = "aa11"
        b.fingerprint = "aa22"
        ledger = Ledger(tmp_path / "runs")
        ledger.append(a)
        ledger.append(b)
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.by_fingerprint("aa")

    def test_newer_schema_rejected_with_location(self, tmp_path, clamr_runs):
        r1, _ = clamr_runs
        doc = json.loads(clone(r1).to_json())
        doc["schema"] = LEDGER_SCHEMA_VERSION + 1
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(doc) + "\n")
        with pytest.raises(ValueError, match="future.jsonl:1"):
            Ledger(path).load()


# ---------------------------------------------------------------------------
# gating (acceptance criteria: both regression classes caught)
# ---------------------------------------------------------------------------


class TestGate:
    def test_unperturbed_rerun_passes(self, clamr_runs):
        r1, _ = clamr_runs
        result = gate_record(scale_timings(r1, 1.01), jittered_baseline(r1))
        assert result.passed
        assert result.checks > 4
        assert "PASS" in result.render()

    def test_genuine_rerun_passes(self, clamr_runs):
        # an actual second run of the workload: its timings carry real
        # run-to-run noise, so gate with the wide relative floor a
        # cross-machine baseline would use — fidelity rules stay strict
        r1, r2 = clamr_runs
        result = gate_record(clone(r2), jittered_baseline(r1), GateConfig(rel_floor=3.0))
        assert result.passed, result.render()

    def test_injected_20pct_slowdown_fails(self, clamr_runs):
        # the injected regression: every recorded span timing ~20% up
        r1, _ = clamr_runs
        result = gate_record(scale_timings(r1, 1.22), jittered_baseline(r1))
        assert not result.passed
        perf = [f for f in result.findings if f.kind == "perf"]
        assert perf, result.render()
        assert any(f.metric == "wall_s" for f in perf)
        assert all(f.current > f.threshold for f in perf)
        assert "FAIL" in result.render()

    def test_injected_nan_event_fails(self, clamr_runs):
        # the injected fidelity regression: one forced NaN watchpoint event
        r1, _ = clamr_runs
        bad = clone(r1)
        bad.fidelity["nan_events"] = 1
        result = gate_record(bad, jittered_baseline(r1))
        assert not result.passed
        assert any(
            f.kind == "fidelity" and f.metric == "nan_events" for f in result.findings
        )

    def test_mass_drift_blowup_fails(self, clamr_runs):
        r1, _ = clamr_runs
        bad = clone(r1)
        bad.fidelity["mass_drift"] = max(abs(r1.fidelity["mass_drift"]) * 100.0, 1e-6)
        result = gate_record(bad, jittered_baseline(r1))
        assert any(f.metric == "mass_drift" for f in result.findings)

    def test_tiny_kernels_are_not_timed(self):
        base = _synthetic({"big": 0.5, "tiny": 1e-5})
        cur = _synthetic({"big": 0.5, "tiny": 1e-3})  # 100x "regression" in 10 µs
        result = gate_record(cur, [base, base, base])
        assert result.passed  # below min_kernel_s: measuring the OS, not code

    def test_baseline_only_kernel_is_surfaced(self):
        # a kernel that disappears from the current run (renamed, or no
        # longer instrumented) cannot be checked, but must not vanish
        # silently from the gate output
        base = _synthetic({"big": 0.5, "gone": 0.5})
        cur = _synthetic({"big": 0.5})
        result = gate_record(cur, [base, base, base])
        assert result.passed
        assert any("'gone'" in s for s in result.skipped)

    def test_missing_baseline_skips_or_fails(self, clamr_runs):
        r1, _ = clamr_runs
        lenient = gate_record(clone(r1), [])
        assert lenient.passed and lenient.skipped
        strict = gate_record(clone(r1), [], GateConfig(require_baseline=True))
        assert not strict.passed
        assert strict.findings[0].kind == "missing-baseline"

    def test_gate_ledger_matches_by_workload_key(self, tmp_path, clamr_runs):
        r1, _ = clamr_runs
        base = Ledger(tmp_path / "base.jsonl")
        for rec in jittered_baseline(r1):
            base.append(rec)
        cur = Ledger(tmp_path / "cur.jsonl")
        cur.append(scale_timings(r1, 1.01))
        assert gate_ledger(cur, base).passed
        cur.append(scale_timings(r1, 1.5))  # latest record per key is gated
        assert not gate_ledger(cur, base).passed


def _synthetic(kernels: dict, wall: float = 1.0, fidelity: dict | None = None) -> RunRecord:
    base_fidelity = {
        "nan_events": 0,
        "inf_events": 0,
        "overflow_risk_events": 0,
        "subnormal_events": 0,
        "cancellation_events": 0,
        "mass_drift": 0.0,
        "asymmetry_relative": 0.0,
    }
    return RunRecord(
        schema=LEDGER_SCHEMA_VERSION,
        fingerprint="f" * 16,
        workload_key="k" * 16,
        workload="clamr",
        label="synthetic",
        config={},
        policy="mixed",
        seed=0,
        git_sha="deadbeef",
        machine={},
        created_unix=0.0,
        wall_s=wall,
        kernel_s=0.9 * wall,
        kernels={
            name: KernelSummary(
                calls=1, total_s=t, mean_ms=1e3 * t, flops=0.0, state_bytes=0.0
            )
            for name, t in kernels.items()
        },
        fidelity=dict(fidelity or base_fidelity),
    )


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


class TestReport:
    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4 and line[0] == "▁" and line[-1] == "█"

    def test_sparkline_thins_long_series(self):
        assert len(sparkline(list(range(100)), width=16)) == 16

    def test_sparkline_keeps_the_newest_run(self):
        # downsampling must anchor the final element — the newest run is
        # the one a trend review is about
        assert sparkline([0.0] * 99 + [1.0], width=16)[-1] == "█"
        assert sparkline([1.0] + [0.0] * 99, width=16)[0] == "█"
        assert len(sparkline([0.0] * 99 + [1.0], width=1)) == 1

    def test_sparkline_marks_nonfinite(self):
        assert "!" in sparkline([1.0, float("nan"), 2.0])
        assert sparkline([float("inf")] * 3) == "!!!"

    def test_trend_and_summary_render(self, tmp_path, clamr_runs):
        r1, r2 = clamr_runs
        ledger = Ledger(tmp_path / "runs")
        for rec in (r1, r2):
            ledger.append(clone(rec))
        trend = trend_table(ledger).render()
        assert "wall" in trend and r1.label in trend
        summary = ledger_summary(ledger).render()
        assert r1.workload_key[:8] in summary

    def test_compare_table_flags_slower(self, clamr_runs):
        r1, _ = clamr_runs
        a = jittered_baseline(r1)
        b = [scale_timings(r1, f) for f in (1.49, 1.5, 1.51)]
        rendered = compare_table(a, b).render()
        assert "slower" in rendered
        assert "fidelity A vs B" in rendered
        same = compare_table(a, a).render()
        assert "slower" not in same

    def test_compare_needs_records(self, clamr_runs):
        r1, _ = clamr_runs
        with pytest.raises(ValueError):
            compare_table([], [clone(r1)])


# ---------------------------------------------------------------------------
# bench export
# ---------------------------------------------------------------------------


class TestBench:
    def test_document_is_schema_valid(self, tmp_path, clamr_runs):
        r1, r2 = clamr_runs
        ledger = Ledger(tmp_path / "runs")
        for rec in (r1, r2):
            ledger.append(clone(rec))
        doc = bench_document(ledger)
        validate_bench_document(doc)  # must not raise
        names = {e["name"] for e in doc["entries"]}
        assert any(n.endswith("wall/total_ms") for n in names)
        assert any("/kernel/" in n for n in names)
        assert any(n.endswith("fidelity/mass_drift") for n in names)
        medians = {e["name"]: e["samples"] for e in doc["entries"]}
        assert max(medians.values()) == 2  # both runs entered the medians

    def test_colliding_labels_stay_unique(self, tmp_path, clamr_runs):
        # default labels omit the seed, so two seeds of one config share a
        # label; entry names must still be unique or export-bench crashes
        r1, _ = clamr_runs
        twin = clone(r1)
        twin.seed = 1
        twin.workload_key = "1" * 16
        twin.fingerprint = "2" * 16
        ledger = Ledger(tmp_path / "runs")
        ledger.append(clone(r1))
        ledger.append(twin)
        doc = bench_document(ledger)
        validate_bench_document(doc)  # must not raise on duplicate names
        assert len({e["workload_key"] for e in doc["entries"]}) == 2

    def test_write_bench(self, tmp_path, clamr_runs):
        r1, _ = clamr_runs
        ledger = Ledger(tmp_path / "runs")
        ledger.append(clone(r1))
        out = write_bench(ledger, tmp_path / "BENCH.json")
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-bench/v1"
        validate_bench_document(doc)

    def test_validator_catches_violations(self):
        good = {
            "schema": "repro-bench/v1",
            "generated_unix": 0.0,
            "git_sha": "abc",
            "machine": {},
            "entries": [
                {"name": "a", "value": 1.0, "unit": "ms", "samples": 1,
                 "workload_key": "k", "fingerprint": "f"},
            ],
        }
        validate_bench_document(good)
        for mutate, fragment in [
            (lambda d: d.update(schema="nope"), "schema"),
            (lambda d: d["entries"].append(dict(d["entries"][0])), "duplicate"),
            (lambda d: d["entries"][0].update(value=float("nan")), "finite"),
            (lambda d: d["entries"][0].update(unit="furlongs"), "unit"),
            (lambda d: d["entries"][0].update(samples=0), "samples"),
            (lambda d: d["entries"][0].update(fingerprint=""), "fingerprint"),
        ]:
            bad = json.loads(json.dumps(good))
            mutate(bad)
            with pytest.raises(ValueError, match=fragment):
                validate_bench_document(bad)


# ---------------------------------------------------------------------------
# CLI (the acceptance path: nonzero exits on injected regressions)
# ---------------------------------------------------------------------------


def _write_ledger(path, records) -> Ledger:
    ledger = Ledger(path)
    for rec in records:
        ledger.append(rec)
    return ledger


class TestLedgerCli:
    @pytest.fixture()
    def ledgers(self, tmp_path, clamr_runs):
        """baseline.jsonl (3 jittered runs) + the record currents derive from.

        Currents are perturbed clones of the same base record, so the gate
        outcome is a deterministic function of the injected perturbation —
        never of scheduler noise between two real runs.
        """
        r1, _ = clamr_runs
        base_path = tmp_path / "baseline.jsonl"
        _write_ledger(base_path, jittered_baseline(r1))
        return tmp_path, base_path, r1

    def test_record_report_export(self, tmp_path, capsys):
        ledger_path = tmp_path / "obs"
        trace_dir = tmp_path / "traces"
        assert main([
            "ledger", "record", "clamr", "--ledger", str(ledger_path),
            "--runs", "2", "--nx", "12", "--steps", "12", "--trace-dir", str(trace_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded" in out and "fingerprint" in out
        assert len(Ledger(ledger_path)) == 2
        assert list(trace_dir.glob("*.trace.json"))
        assert list(trace_dir.glob("*.jsonl"))

        assert main(["ledger", "report", "--ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "Run ledger" in out and "Trend" in out

        bench = tmp_path / "BENCH_observatory.json"
        assert main([
            "ledger", "export-bench", "--ledger", str(ledger_path), "--out", str(bench),
        ]) == 0
        doc = json.loads(bench.read_text())
        validate_bench_document(doc)

    def test_report_empty_ledger(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["ledger", "report", "--ledger", str(path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_report_missing_ledger_is_an_error(self, tmp_path, capsys):
        # a missing ledger is a user error (exit 2), not an empty ledger
        assert main(["ledger", "report", "--ledger", str(tmp_path / "nope")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_compare_by_prefix(self, tmp_path, clamr_runs, capsys):
        r1, _ = clamr_runs
        a, b = clone(r1), scale_timings(r1, 1.5)
        b.fingerprint = "0123456789abcdef"
        path = tmp_path / "cmp.jsonl"
        _write_ledger(path, [a, b])
        assert main([
            "ledger", "compare", r1.fingerprint[:8], "0123", "--ledger", str(path),
        ]) == 0
        assert "Ledger compare" in capsys.readouterr().out
        assert main(["ledger", "compare", "zzzz", "0123", "--ledger", str(path)]) == 2

    def test_gate_passes_unperturbed(self, ledgers, capsys):
        tmp_path, base_path, rec = ledgers
        cur = tmp_path / "current.jsonl"
        _write_ledger(cur, [scale_timings(rec, 1.01)])
        assert main([
            "ledger", "gate", "--ledger", str(cur), "--baseline", str(base_path),
        ]) == 0
        assert "gate: PASS" in capsys.readouterr().out

    def test_gate_exits_nonzero_on_injected_slowdown(self, ledgers, capsys):
        tmp_path, base_path, rec = ledgers
        cur = tmp_path / "slow.jsonl"
        _write_ledger(cur, [scale_timings(rec, 1.22)])
        assert main([
            "ledger", "gate", "--ledger", str(cur), "--baseline", str(base_path),
        ]) == 1
        out = capsys.readouterr().out
        assert "gate: FAIL" in out and "[perf]" in out

    def test_gate_exits_nonzero_on_injected_nan(self, ledgers, capsys):
        tmp_path, base_path, rec = ledgers
        bad = clone(rec)
        bad.fidelity["nan_events"] = 1
        cur = tmp_path / "nan.jsonl"
        _write_ledger(cur, [bad])
        assert main([
            "ledger", "gate", "--ledger", str(cur), "--baseline", str(base_path),
        ]) == 1
        out = capsys.readouterr().out
        assert "gate: FAIL" in out and "nan_events" in out

    def test_gate_require_baseline(self, tmp_path, clamr_runs, capsys):
        r1, _ = clamr_runs
        orphan = clone(r1)
        orphan.workload_key = "0" * 16  # no such key in the baseline
        cur = tmp_path / "orphan.jsonl"
        _write_ledger(cur, [orphan])
        empty_base = tmp_path / "base.jsonl"
        _write_ledger(empty_base, [])
        empty_base.touch()  # zero records never touch the file; the gate needs it to exist
        assert main([
            "ledger", "gate", "--ledger", str(cur), "--baseline", str(empty_base),
        ]) == 0  # skip by default
        capsys.readouterr()
        assert main([
            "ledger", "gate", "--ledger", str(cur), "--baseline", str(empty_base),
            "--require-baseline",
        ]) == 1
        assert "missing-baseline" in capsys.readouterr().out

    def test_gate_rel_floor_flag(self, ledgers, capsys):
        # a generous relative floor (the cross-machine CI setting) absorbs
        # the same delta the default floor flags
        tmp_path, base_path, rec = ledgers
        cur = tmp_path / "floor.jsonl"
        _write_ledger(cur, [scale_timings(rec, 1.22)])
        assert main([
            "ledger", "gate", "--ledger", str(cur), "--baseline", str(base_path),
            "--rel-floor", "3.0",
        ]) == 0


# ---------------------------------------------------------------------------
# harness wiring
# ---------------------------------------------------------------------------


class TestHarnessWiring:
    def test_run_clamr_levels_appends_records(self, tmp_path):
        from repro.harness.experiments import run_clamr_levels

        ledger_dir = tmp_path / "obs"
        results = run_clamr_levels(nx=8, steps=6, max_level=1, ledger=ledger_dir)
        ledger = Ledger(ledger_dir)
        assert len(ledger) == len(results)
        # one workload key per precision level, each a distinct policy
        policies = {ledger.latest(k).policy for k in ledger.workload_keys()}
        assert policies == set(results)

    def test_run_self_precisions_appends_records(self, tmp_path):
        from repro.harness.experiments import run_self_precisions

        ledger_dir = tmp_path / "obs"
        results = run_self_precisions(elems=2, order=2, steps=3, ledger=ledger_dir)
        ledger = Ledger(ledger_dir)
        assert len(ledger) == len(results)
        labels = {ledger.latest(k).label for k in ledger.workload_keys()}
        assert all(label.startswith("self/") for label in labels)


class TestStoreDurability:
    """Appends are fsynced; loads tolerate exactly a torn trailing line."""

    def test_truncated_trailing_line_skipped_with_warning(self, tmp_path, clamr_runs):
        r1, r2 = clamr_runs
        path = tmp_path / "runs.jsonl"
        ledger = Ledger(path)
        ledger.append(clone(r1))
        ledger.append(clone(r2))
        # simulate a writer killed mid-append: cut the last line short
        text = path.read_text()
        path.write_text(text[: len(text) - 40])
        with pytest.warns(RuntimeWarning, match="truncated"):
            fresh = Ledger(path).load()
        assert len(fresh) == 1
        assert fresh.records()[0].fingerprint == r1.fingerprint

    def test_midfile_corruption_still_raises(self, tmp_path, clamr_runs):
        r1, r2 = clamr_runs
        path = tmp_path / "runs.jsonl"
        ledger = Ledger(path)
        ledger.append(clone(r1))
        ledger.append(clone(r2))
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-30]  # tear the FIRST record instead
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="runs.jsonl:1"):
            Ledger(path).load()

    def test_append_fsyncs(self, tmp_path, clamr_runs, monkeypatch):
        # the append path goes through the shared JSONL helper, which owns
        # the fsync (see repro.ioutil.append_jsonl_line)
        import repro.ioutil as ioutil

        calls = []
        monkeypatch.setattr(ioutil, "fsync_file", lambda fh: calls.append(fh))
        r1, _ = clamr_runs
        Ledger(tmp_path / "runs.jsonl").append(clone(r1))
        assert len(calls) == 1
