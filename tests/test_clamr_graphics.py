"""Tests for the graphics-precision output pipeline."""

import numpy as np
import pytest

from repro.clamr.graphics import normalize_field, write_pgm, write_ppm
from repro.precision.policy import FULL_PRECISION, MIN_PRECISION


class TestNormalize:
    def test_range_mapping(self):
        f = np.array([[0.0, 5.0], [10.0, 2.5]])
        out = normalize_field(f)
        assert out.min() == 0.0 and out.max() == 1.0
        assert out[1, 1] == pytest.approx(0.25)

    def test_graphics_dtype_at_every_policy(self):
        f = np.ones((2, 2), dtype=np.float64)
        for policy in (MIN_PRECISION, FULL_PRECISION):
            assert normalize_field(f, policy).dtype == np.float32

    def test_flat_field_is_gray(self):
        out = normalize_field(np.full((3, 3), 7.0))
        np.testing.assert_array_equal(out, 0.5)

    def test_explicit_limits_clip(self):
        f = np.array([[-1.0, 0.5, 2.0]])
        out = normalize_field(f.reshape(1, 3), vmin=0.0, vmax=1.0)
        np.testing.assert_allclose(out, [[0.0, 0.5, 1.0]])

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            normalize_field(np.zeros(5))


class TestPgm:
    def test_roundtrip_header_and_size(self, tmp_path):
        f = np.random.default_rng(0).random((16, 24))
        path = tmp_path / "x.pgm"
        nbytes = write_pgm(path, f)
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n24 16\n255\n")
        assert nbytes == len(raw)
        assert len(raw) == len(b"P5\n24 16\n255\n") + 16 * 24

    def test_16bit(self, tmp_path):
        f = np.random.default_rng(1).random((4, 4))
        path = tmp_path / "x16.pgm"
        write_pgm(path, f, bit_depth=16)
        raw = path.read_bytes()
        assert b"65535" in raw[:20]
        assert len(raw) == len(b"P5\n4 4\n65535\n") + 4 * 4 * 2

    def test_pixel_values(self, tmp_path):
        f = np.array([[0.0, 1.0]])
        path = tmp_path / "bw.pgm"
        write_pgm(path, f)
        raw = path.read_bytes()
        assert raw[-2:] == bytes([0, 255])

    def test_invalid_depth(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2)), bit_depth=12)


class TestPpm:
    def test_header_and_size(self, tmp_path):
        f = np.random.default_rng(2).random((8, 8))
        path = tmp_path / "x.ppm"
        nbytes = write_ppm(path, f)
        raw = path.read_bytes()
        assert raw.startswith(b"P6\n8 8\n255\n")
        assert nbytes == len(raw) == len(b"P6\n8 8\n255\n") + 8 * 8 * 3

    def test_center_is_white(self, tmp_path):
        f = np.array([[0.9, 1.0, 1.1]])
        path = tmp_path / "c.ppm"
        write_ppm(path, f, center=1.0)
        raw = path.read_bytes()
        pixels = np.frombuffer(raw[len(b"P6\n3 1\n255\n"):], dtype=np.uint8).reshape(1, 3, 3)
        np.testing.assert_array_equal(pixels[0, 1], [255, 255, 255])  # white center
        assert pixels[0, 0, 2] > pixels[0, 0, 0]  # below center: blue-ish
        assert pixels[0, 2, 0] > pixels[0, 2, 2]  # above center: red-ish

    def test_on_simulation_output(self, tmp_path):
        from repro.clamr import ClamrSimulation, DamBreakConfig

        sim = ClamrSimulation(DamBreakConfig(nx=16, ny=16, max_level=1), policy="min")
        res = sim.run(20)
        nbytes = write_ppm(tmp_path / "dam.ppm", res.field, policy=res.policy, center=1.0)
        assert nbytes > 0
