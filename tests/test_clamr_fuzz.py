"""Property-based fuzzing of the AMR mesh/regrid machinery.

Random refinement/coarsening sequences must preserve every structural
invariant: domain coverage without overlap (checked by the hash builder),
2:1 face balance, neighbor-link consistency, conservation of mass through
state transfer, and kernel stability on whatever mesh comes out.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clamr.amr import regrid
from repro.clamr.kernels import FaceLists, compute_timestep, finite_diff_vectorized
from repro.clamr.mesh import AmrMesh
from repro.clamr.state import ShallowWaterState
from repro.precision.policy import FULL_PRECISION


def random_mesh_and_state(seed: int, rounds: int, nx: int = 4, max_level: int = 2):
    """Evolve a uniform mesh through `rounds` random regrids."""
    rng = np.random.default_rng(seed)
    mesh = AmrMesh.uniform(nx, nx, max_level=max_level, coarse_size=1.0 / nx)
    x, y = mesh.cell_centers()
    H = 1.0 + 0.5 * np.exp(-((x - 0.5) ** 2 + (y - 0.5) ** 2) * 8.0)
    state = ShallowWaterState(H=H, U=np.zeros_like(H), V=np.zeros_like(H), policy=FULL_PRECISION)
    for _ in range(rounds):
        flags = rng.integers(-1, 2, mesh.ncells).astype(np.int8)
        mesh, state = regrid(mesh, state, flags)
    return mesh, state


class TestRegridFuzz:
    @given(st.integers(0, 10_000), st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_invariants_after_random_regrids(self, seed, rounds):
        mesh, state = random_mesh_and_state(seed, rounds)
        # hash build doubles as cover/overlap validation — must not raise
        image = mesh.build_hash()
        assert (image >= 0).all()
        assert mesh.check_balance()
        # total area preserved
        assert mesh.cell_area().sum() == pytest.approx(1.0, rel=1e-12)

    @given(st.integers(0, 10_000), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_mass_conserved_through_random_regrids(self, seed, rounds):
        rng = np.random.default_rng(seed)
        mesh = AmrMesh.uniform(4, 4, max_level=2, coarse_size=0.25)
        H = 1.0 + rng.random(mesh.ncells)
        state = ShallowWaterState(
            H=H, U=rng.normal(size=mesh.ncells), V=rng.normal(size=mesh.ncells),
            policy=FULL_PRECISION,
        )
        mass0 = state.total_mass(mesh.cell_area())
        for _ in range(rounds):
            flags = rng.integers(-1, 2, mesh.ncells).astype(np.int8)
            mesh, state = regrid(mesh, state, flags)
        assert state.total_mass(mesh.cell_area()) == pytest.approx(mass0, rel=1e-13)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_kernel_stable_on_fuzzed_mesh(self, seed):
        mesh, state = random_mesh_and_state(seed, rounds=3)
        faces = FaceLists.from_mesh(mesh)
        for _ in range(5):
            dt = compute_timestep(mesh, state, 0.2)
            finite_diff_vectorized(mesh, state, dt, faces=faces)
        assert np.isfinite(state.H).all()
        assert state.H.min() > 0.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_neighbor_links_consistent(self, seed):
        """Every stored link points to a face-adjacent cell of level
        within one, and boundary sides self-reference."""
        mesh, _ = random_mesh_and_state(seed, rounds=2)
        span = mesh.cell_span_fine().astype(np.int64)
        i0 = mesh.i.astype(np.int64) * span
        j0 = mesh.j.astype(np.int64) * span
        for c in range(mesh.ncells):
            for nbr, is_boundary in (
                (int(mesh.nlft[c]), i0[c] == 0),
                (int(mesh.nrht[c]), i0[c] + span[c] == mesh.nxf),
                (int(mesh.nbot[c]), j0[c] == 0),
                (int(mesh.ntop[c]), j0[c] + span[c] == mesh.nyf),
            ):
                if is_boundary:
                    assert nbr == c
                else:
                    assert nbr != c
                    assert abs(int(mesh.level[nbr]) - int(mesh.level[c])) <= 1

    @given(st.integers(0, 10_000), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_face_lists_cover_every_interior_adjacency(self, seed, rounds):
        """Total interior x-face length equals the measured interface
        length computed directly from the hash image."""
        mesh, _ = random_mesh_and_state(seed, rounds)
        faces = FaceLists.from_mesh(mesh)
        image = mesh.build_hash()
        fine = mesh.coarse_size / (1 << mesh.max_level)
        # count fine-pixel column boundaries where the owner changes
        changes = int((image[:, 1:] != image[:, :-1]).sum())
        assert faces.xsize.sum() == pytest.approx(changes * fine, rel=1e-12)


class TestGuardedLoopFuzz:
    """The resilient supervisor's core promise, fuzzed: a checkpoint is
    only ever taken after a full detector scan passes, so whatever fault
    lands mid-run, non-finite state is never committed as a rollback
    target — and a run that completes ends on fully finite state."""

    @given(
        st.integers(0, 10_000),
        st.sampled_from(["bitflip", "nan", "inf", "overflow"]),
        st.sampled_from(["H", "U", "V"]),
        st.integers(1, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_float32_loop_never_commits_nonfinite_state(self, seed, kind, array, step):
        from repro.clamr import DamBreakConfig
        from repro.resilience import (
            ClamrAdapter,
            FaultPlan,
            FaultSpec,
            RecoveryPolicy,
            ResilientRunner,
        )

        cfg = DamBreakConfig(nx=8, ny=8, max_level=1)
        adapter = ClamrAdapter(cfg, policy="min")
        assert adapter.state_dtype == np.float32

        committed = []
        take_snapshot = adapter.snapshot

        def checked_snapshot():
            snap = take_snapshot()
            s = snap["state"]
            assert np.isfinite(s.H).all() and np.isfinite(s.U).all() and np.isfinite(s.V).all()
            committed.append(snap)
            return snap

        adapter.snapshot = checked_snapshot
        plan = FaultPlan(specs=(FaultSpec(kind=kind, array=array, step=step),), seed=seed)
        runner = ResilientRunner(
            adapter, plan=plan, policy=RecoveryPolicy(checkpoint_interval=4)
        )
        report = runner.run(12)
        assert committed, "at least the initial checkpoint must have been taken"
        if report.completed:
            for arr in adapter.arrays().values():
                assert np.isfinite(arr).all()
