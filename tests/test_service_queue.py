"""The durable queue: lifecycle, claim races, leases, damage quarantine.

Everything here runs without executing a single workload — the queue is
pure file choreography, so the tests drive it with raw specs and
hand-built leases (including leases owned by genuinely dead pids).
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.service.jobs import JobSpec
from repro.service.lease import Lease, read_lease, write_lease
from repro.service.queue import JobLost, JobQueue
from repro.service.retry import RetryPolicy


def tiny_spec(**overrides) -> JobSpec:
    kwargs = {"workload": "clamr", "nx": 12, "steps": 8}
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def dead_pid() -> int:
    """A pid that existed moments ago and is now certainly dead."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestLifecycle:
    def test_submit_claim_start_finish(self, tmp_path):
        queue = JobQueue(tmp_path)
        submitted = queue.submit(tiny_spec())
        assert submitted.state == "pending"
        assert queue.counts()["pending"] == 1

        job, lease = queue.claim()
        assert job.id == submitted.id
        assert job.state == "claimed"
        assert lease.pid == os.getpid()
        assert read_lease(queue.lease_path(job.id)).pid == os.getpid()

        job = queue.start(job)
        assert job.state == "running"

        queue.finish(job, {"fingerprint": "abc", "cached": False})
        assert queue.counts() == {
            "pending": 0, "claimed": 0, "running": 0,
            "done": 1, "failed": 0, "quarantine": 0,
        }
        done = queue.jobs("done")[0]
        assert done.doc["result"]["fingerprint"] == "abc"
        assert not queue.lease_path(job.id).exists()  # lease dropped
        events = [e["event"] for e in done.doc["history"]]
        assert events == ["submitted", "claimed", "running", "done"]

    def test_claim_is_exclusive(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        assert queue.claim() is not None
        assert queue.claim() is None  # nothing left to claim

    def test_claim_respects_backoff_window(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        job, _lease = queue.claim()
        job = queue.start(job)
        _job, outcome = queue.fail(job, "flaky", RetryPolicy(max_attempts=3))
        assert outcome == "retried"
        requeued = queue.jobs("pending")[0]
        assert requeued.attempts == 1
        assert requeued.not_before_unix > time.time()
        assert queue.claim() is None  # still inside the backoff window
        assert queue.claim(now=requeued.not_before_unix + 0.01) is not None

    def test_fail_exhausts_into_failed(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        job, _lease = queue.claim()
        _job, outcome = queue.fail(job, "boom", RetryPolicy(max_attempts=1))
        assert outcome == "failed"
        parked = queue.jobs("failed")[0]
        assert parked.doc["error"] == "boom"
        assert queue.active_count() == 0


class TestScopeClaiming:
    def test_duplicate_key_waits_for_the_twin(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        queue.submit(tiny_spec())  # same workload key
        first = queue.claim()
        assert first is not None
        # the duplicate is pending and eligible, but its key is busy
        assert queue.claim() is None
        queue.finish(first[0], {"fingerprint": "x", "cached": False})
        second = queue.claim()  # twin done: duplicate may now proceed
        assert second is not None
        assert second[0].workload_key == first[0].workload_key

    def test_different_keys_claim_independently(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec(policy="mixed"))
        queue.submit(tiny_spec(policy="full"))
        assert queue.claim() is not None
        assert queue.claim() is not None


class TestOwnership:
    def test_finish_without_lease_raises_joblost(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        job, _lease = queue.claim()
        queue.lease_path(job.id).unlink()  # a reclaimer took it from us
        with pytest.raises(JobLost):
            queue.finish(job, {"fingerprint": "x", "cached": False})

    def test_finish_with_stolen_lease_raises_joblost(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        job, lease = queue.claim()
        write_lease(
            queue.lease_path(job.id),
            Lease(
                pid=lease.pid + 1,
                ttl_s=lease.ttl_s,
                acquired_unix=lease.acquired_unix,
                renewed_unix=lease.renewed_unix,
                renewed_monotonic=lease.renewed_monotonic,
            ),
        )
        with pytest.raises(JobLost):
            queue.fail(job, "boom", RetryPolicy())


class TestReclaim:
    def test_dead_owner_reclaimed_immediately(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        job, lease = queue.claim(lease_ttl_s=3600.0)
        write_lease(
            queue.lease_path(job.id), Lease.acquire(pid=dead_pid(), ttl_s=3600.0)
        )
        actions = queue.reclaim_stale(RetryPolicy(max_attempts=3))
        assert len(actions) == 1 and "dead" in actions[0]
        requeued = queue.jobs("pending")[0]
        assert requeued.id == job.id
        assert requeued.attempts == 1  # a worker loss costs an attempt

    def test_reclaimed_job_reruns_with_identical_identity(self, tmp_path):
        # the crash-recovery contract: the re-queued job is the same
        # document, so a re-run produces the same workload key
        queue = JobQueue(tmp_path)
        submitted = queue.submit(tiny_spec())
        job, _lease = queue.claim()
        queue.start(job)
        write_lease(queue.lease_path(job.id), Lease.acquire(pid=dead_pid()))
        queue.reclaim_stale(RetryPolicy(max_attempts=3))
        requeued, _lease = queue.claim(now=time.time() + 60.0)
        assert requeued.id == submitted.id
        assert requeued.spec == submitted.spec
        assert requeued.spec.workload_key() == submitted.workload_key

    def test_hung_owner_reclaimed_after_ttl(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        job, _lease = queue.claim(lease_ttl_s=0.05)
        # alive pid (ours), but the heartbeat never came
        time.sleep(0.1)
        actions = queue.reclaim_stale()
        assert len(actions) == 1 and "missed its heartbeat" in actions[0]
        assert queue.jobs("pending")[0].id == job.id

    def test_live_lease_not_reclaimed(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        queue.claim(lease_ttl_s=3600.0)
        assert queue.reclaim_stale() == []

    def test_poison_job_quarantined_after_exhaustion(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        job, _lease = queue.claim()
        write_lease(queue.lease_path(job.id), Lease.acquire(pid=dead_pid()))
        actions = queue.reclaim_stale(RetryPolicy(max_attempts=1))
        assert len(actions) == 1 and actions[0].startswith("quarantined")
        assert queue.counts()["quarantine"] == 1
        reasons = queue.quarantine_reasons()
        assert list(reasons) == [job.id]
        assert "poison" in reasons[job.id]
        assert "\n" not in reasons[job.id]


class TestDamage:
    def test_torn_file_quarantined_with_one_line_reason(self, tmp_path):
        queue = JobQueue(tmp_path).ensure()
        torn = queue.dir("pending") / "torn.json"
        torn.write_text('{"schema": 1, "id": "to', encoding="utf-8")
        assert queue.jobs("pending") == []  # scan quarantines, never raises
        assert not torn.exists()
        reasons = queue.quarantine_reasons()
        assert "unreadable JSON" in reasons["torn"]
        assert "\n" not in reasons["torn"]

    def test_wrong_schema_quarantined(self, tmp_path):
        queue = JobQueue(tmp_path).ensure()
        bad = queue.dir("pending") / "future.json"
        bad.write_text(json.dumps({"schema": 99, "id": "future"}), encoding="utf-8")
        assert queue.jobs("pending") == []
        assert "schema" in queue.quarantine_reasons()["future"]

    def test_invalid_spec_quarantined(self, tmp_path):
        queue = JobQueue(tmp_path).ensure()
        doc = JobQueue(tmp_path).submit(tiny_spec()).doc
        doc["spec"]["workload"] = "hydra"
        path = queue.dir("pending") / "badspec.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        queue.jobs("pending")  # scan
        assert "invalid job spec" in queue.quarantine_reasons()["badspec"]

    def test_status_snapshot_is_json_safe(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit(tiny_spec())
        job, _lease = queue.claim()
        queue.finish(job, {"fingerprint": "x", "cached": True})
        status = queue.status()
        json.dumps(status)  # must serialize as-is for --json
        assert status["counts"]["done"] == 1
        assert status["done_cached"] == 1 and status["done_computed"] == 0
