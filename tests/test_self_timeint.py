"""Convergence and behavior tests for the low-storage RK3 integrator."""

import numpy as np
import pytest

from repro.self_.timeint import LowStorageRK3


class TestConvergence:
    def test_third_order_on_linear_ode(self):
        """y' = -y, y(0)=1: error must shrink as dt^3."""

        def rhs(y):
            return -y

        errors = []
        for steps in (20, 40, 80):
            y = np.array([1.0])
            stepper = LowStorageRK3(rhs=rhs)
            dt = 1.0 / steps
            for _ in range(steps):
                stepper.step(y, dt)
            errors.append(abs(y[0] - np.exp(-1.0)))
        rate1 = np.log2(errors[0] / errors[1])
        rate2 = np.log2(errors[1] / errors[2])
        assert rate1 == pytest.approx(3.0, abs=0.3)
        assert rate2 == pytest.approx(3.0, abs=0.3)

    def test_exact_on_quadratic_in_time(self):
        """RK3 integrates polynomial forcing up to t^2 exactly."""
        t = {"now": 0.0}

        # y' = 3 t^2 -> y = t^3; autonomize by tracking t in the state
        def rhs(state):
            out = np.empty_like(state)
            out[0] = 3.0 * state[1] ** 2  # y' = 3 t^2
            out[1] = 1.0  # t' = 1
            return out

        y = np.array([0.0, 0.0])
        stepper = LowStorageRK3(rhs=rhs)
        for _ in range(10):
            stepper.step(y, 0.1)
        del t
        assert y[0] == pytest.approx(1.0, rel=1e-12)

    def test_linear_stability_on_oscillator(self):
        """Within the RK3 stability region, the oscillator must not blow up."""

        def rhs(y):
            return np.array([y[1], -y[0]])

        y = np.array([1.0, 0.0])
        stepper = LowStorageRK3(rhs=rhs)
        for _ in range(1000):
            stepper.step(y, 0.1)
        energy = y[0] ** 2 + y[1] ** 2
        assert energy < 1.01  # RK3 slightly dissipates; must never grow


class TestMechanics:
    def test_in_place_update(self):
        y = np.array([1.0])
        stepper = LowStorageRK3(rhs=lambda v: -v)
        out = stepper.step(y, 0.1)
        assert out is y

    def test_register_reuse(self):
        stepper = LowStorageRK3(rhs=lambda v: -v)
        y = np.ones(4)
        stepper.step(y, 0.1)
        reg = stepper._register
        stepper.step(y, 0.1)
        assert stepper._register is reg

    def test_register_reallocated_on_shape_change(self):
        stepper = LowStorageRK3(rhs=lambda v: -v)
        y = np.ones(4)
        stepper.step(y, 0.1)
        z = np.ones(8)
        stepper.step(z, 0.1)
        assert stepper._register.shape == (8,)

    def test_float32_state_stays_float32(self):
        stepper = LowStorageRK3(rhs=lambda v: -v)
        y = np.ones(4, dtype=np.float32)
        stepper.step(y, 0.1)
        assert y.dtype == np.float32

    def test_stage_times(self):
        stepper = LowStorageRK3(rhs=lambda v: v)
        assert stepper.stage_times == (0.0, 1.0 / 3.0, 3.0 / 4.0)
