"""The advisory file lock: cross-process exclusion with a timeout.

``locked()`` guards multi-writer appends (the service workers sharing
one ledger).  The exclusion claim needs a real second process — flock
is per-open-file, so in-process "tests" would pass vacuously.
"""

import json
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.ioutil import append_jsonl_line, iter_jsonl, locked


def hold_lock_in_subprocess(path: Path, hold_s: float) -> subprocess.Popen:
    """Spawn a process that takes ``path``'s lock and holds it for ``hold_s``.

    The child prints ``locked`` once it owns the lock, so the parent can
    synchronize without sleeping and hoping.
    """
    script = textwrap.dedent(
        f"""
        import fcntl, os, sys, time
        fd = os.open({str(path) + ".lock"!r}, os.O_RDWR | os.O_CREAT, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX)
        print("locked", flush=True)
        time.sleep({hold_s})
        """
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", script], stdout=subprocess.PIPE, text=True
    )
    assert proc.stdout.readline().strip() == "locked"
    return proc


class TestLocked:
    def test_times_out_against_a_foreign_holder(self, tmp_path):
        target = tmp_path / "shared.jsonl"
        proc = hold_lock_in_subprocess(target, hold_s=10.0)
        try:
            t0 = time.monotonic()
            with pytest.raises(TimeoutError, match="another writer"):
                with locked(target, timeout_s=0.2, poll_s=0.02):
                    pass
            assert time.monotonic() - t0 < 5.0  # timed out, not blocked
        finally:
            proc.kill()
            proc.wait()

    def test_acquires_once_the_holder_exits(self, tmp_path):
        target = tmp_path / "shared.jsonl"
        proc = hold_lock_in_subprocess(target, hold_s=0.3)
        try:
            # generous timeout: must succeed as soon as the child dies
            with locked(target, timeout_s=30.0, poll_s=0.02):
                append_jsonl_line(target, json.dumps({"who": "parent"}))
            assert [doc for _, doc in iter_jsonl(target)] == [{"who": "parent"}]
        finally:
            proc.wait()

    def test_crashed_holder_leaves_no_deadlock(self, tmp_path):
        target = tmp_path / "shared.jsonl"
        proc = hold_lock_in_subprocess(target, hold_s=10.0)
        proc.kill()  # the lock dies with its process — nothing to clean up
        proc.wait()
        with locked(target, timeout_s=1.0):
            pass

    def test_lock_lives_on_a_sibling_file(self, tmp_path):
        target = tmp_path / "deep" / "ledger.jsonl"
        with locked(target):
            pass
        assert (tmp_path / "deep" / "ledger.jsonl.lock").exists()
        assert not target.exists()  # locking never creates the target itself

    def test_not_reentrant_even_within_one_process(self, tmp_path):
        # each locked() opens its own file description, so a nested
        # block conflicts with the outer one and times out — the lock
        # excludes threads of the same process, not just other processes
        target = tmp_path / "shared.jsonl"
        with locked(target):
            with pytest.raises(TimeoutError):
                with locked(target, timeout_s=0.2, poll_s=0.02):
                    pass


def test_concurrent_appends_interleave_whole_lines(tmp_path):
    """N processes × M locked appends: every line lands intact."""
    target = tmp_path / "shared.jsonl"
    src = Path(__file__).resolve().parents[1] / "src"
    script = textwrap.dedent(
        f"""
        import json, sys
        sys.path.insert(0, {str(src)!r})
        from repro.ioutil import append_jsonl_line, locked
        who = int(sys.argv[1])
        for i in range(20):
            with locked({str(target)!r}):
                append_jsonl_line({str(target)!r}, json.dumps({{"who": who, "i": i}}))
        """
    )
    procs = [
        subprocess.Popen([sys.executable, "-c", script, str(who)]) for who in range(3)
    ]
    for proc in procs:
        assert proc.wait(timeout=120) == 0
    docs = [doc for _, doc in iter_jsonl(target)]
    assert len(docs) == 60
    for who in range(3):
        assert [d["i"] for d in docs if d["who"] == who] == list(range(20))
