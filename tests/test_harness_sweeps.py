"""Tests for the time/parameter sweep experiments."""

import numpy as np
import pytest

from repro.harness.sweeps import asymmetry_growth, divergence_growth, resolution_sweep


class TestDivergenceGrowth:
    @pytest.fixture(scope="class")
    def samples(self):
        return divergence_growth(nx=24, total_steps=120, chunk=40)

    def test_sampling_structure(self, samples):
        assert samples.steps == (40, 80, 120)
        assert set(samples.values) == {"min", "mixed"}
        assert len(samples.meshes_agree) == 3

    def test_divergence_nonzero_and_small(self, samples):
        final = samples.values["min"][-1]
        assert 0.0 < final < 1e-3  # present, but far below the solution

    def test_meshes_agree_at_small_scale(self, samples):
        assert all(samples.meshes_agree)

    def test_figure_conversion(self, samples):
        fig = samples.figure("d", "max |ΔH|")
        assert {s.name for s in fig.series} == {"min", "mixed"}
        assert fig.x.shape == (3,)


class TestAsymmetryGrowth:
    def test_full_stays_at_floor(self):
        samples = asymmetry_growth(nx=16, total_steps=80, chunk=40)
        assert max(samples.values["full"]) < 1e-12
        assert max(samples.values["min"]) >= max(samples.values["full"])

    def test_monotone_nondecreasing_for_min_roughly(self):
        samples = asymmetry_growth(nx=16, total_steps=120, chunk=40)
        vals = samples.values["min"]
        # asymmetry accumulates: the last sample is at least the first
        assert vals[-1] >= vals[0]


class TestResolutionSweep:
    def test_fidelity_claim_resolution_robust(self):
        out = resolution_sweep(sizes=(12, 24), steps_per_cell=3)
        assert set(out) == {12, 24}
        # at every size, min-vs-full stays several orders below the solution
        for orders in out.values():
            assert orders > 4.0
