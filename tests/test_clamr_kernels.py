"""Unit + property tests for the CLAMR finite_diff kernels."""

import numpy as np
import pytest

from repro.clamr.kernels import (
    FaceLists,
    compute_timestep,
    finite_diff_scalar,
    finite_diff_vectorized,
)
from repro.clamr.mesh import AmrMesh
from repro.clamr.state import ShallowWaterState
from repro.machine.counters import KernelCounters
from repro.precision.policy import FULL_PRECISION, MIN_PRECISION, MIXED_PRECISION


def lake_at_rest(mesh, policy=FULL_PRECISION, depth=1.0):
    n = mesh.ncells
    return ShallowWaterState(
        H=np.full(n, depth), U=np.zeros(n), V=np.zeros(n), policy=policy
    )


def refined_mesh() -> AmrMesh:
    i = np.array([1, 0, 1, 0, 1, 0, 1])
    j = np.array([0, 1, 1, 0, 0, 1, 1])
    level = np.array([0, 0, 0, 1, 1, 1, 1])
    return AmrMesh(nx=2, ny=2, max_level=1, i=i, j=j, level=level)


def bump_state(mesh, policy=FULL_PRECISION):
    x, y = mesh.cell_centers()
    lx = mesh.nx * mesh.coarse_size
    ly = mesh.ny * mesh.coarse_size
    H = 1.0 + 0.3 * np.exp(-(((x - lx / 2) ** 2 + (y - ly / 2) ** 2) / (0.05 * lx * ly)))
    return ShallowWaterState(H=H, U=np.zeros_like(H), V=np.zeros_like(H), policy=policy)


class TestFaceLists:
    def test_uniform_counts(self):
        m = AmrMesh.uniform(4, 4)
        f = FaceLists.from_mesh(m)
        assert f.xl.size == 3 * 4  # interior x-faces
        assert f.yb.size == 3 * 4
        assert f.bnd_left.size == f.bnd_right.size == 4
        assert f.bnd_bottom.size == f.bnd_top.size == 4
        assert f.nfaces == 12 + 12 + 16

    def test_refined_face_uniqueness(self):
        m = refined_mesh()
        f = FaceLists.from_mesh(m)
        # every interior face appears exactly once: count by unordered pair
        pairs = set()
        for a, b in zip(f.xl.tolist(), f.xr.tolist()):
            assert (a, b) not in pairs
            pairs.add((a, b))
        for a, b in zip(f.yb.tolist(), f.yt.tolist()):
            assert (a, b, "y") not in pairs
            pairs.add((a, b, "y"))

    def test_coarse_fine_face_sized_by_finer(self):
        m = refined_mesh()
        f = FaceLists.from_mesh(m)
        # faces between level-1 and level-0 cells must have the fine size 0.5
        lvl = m.level
        for a, b, s in zip(f.xl, f.xr, f.xsize):
            if lvl[a] != lvl[b]:
                assert s == 0.5

    def test_total_face_length_matches_geometry(self):
        # sum of interior x-face sizes = total vertical interior interface length
        m = refined_mesh()
        f = FaceLists.from_mesh(m)
        # domain 2x2 with one refined quadrant: vertical interior length is 2
        # (the x=1 line) plus 1 (the internal x=0.5 line inside the quad)
        assert f.xsize.sum() == pytest.approx(3.0)


class TestWellBalance:
    @pytest.mark.parametrize("policy", [MIN_PRECISION, MIXED_PRECISION, FULL_PRECISION])
    def test_lake_at_rest_is_steady(self, policy):
        m = refined_mesh()
        s = lake_at_rest(m, policy)
        H0 = s.H.copy()
        for _ in range(5):
            finite_diff_vectorized(m, s, 0.01)
        np.testing.assert_array_equal(s.H, H0)
        assert (s.U == 0).all() and (s.V == 0).all()


class TestConservation:
    @pytest.mark.parametrize("mesh", [AmrMesh.uniform(8, 8), refined_mesh()])
    def test_mass_conserved_to_roundoff(self, mesh):
        s = bump_state(mesh)
        area = mesh.cell_area()
        m0 = s.total_mass(area)
        for _ in range(20):
            dt = compute_timestep(mesh, s, 0.2)
            finite_diff_vectorized(mesh, s, dt)
        assert s.total_mass(area) == pytest.approx(m0, rel=1e-13)

    def test_momentum_conserved_until_walls(self):
        # large domain, short run: momentum only changes via walls; with a
        # centered symmetric bump the net momentum stays ~0 regardless
        mesh = AmrMesh.uniform(16, 16, coarse_size=1 / 16)
        s = bump_state(mesh)
        for _ in range(10):
            dt = compute_timestep(mesh, s, 0.2)
            finite_diff_vectorized(mesh, s, dt)
        px, py = s.total_momentum(mesh.cell_area())
        assert abs(px) < 1e-12 and abs(py) < 1e-12


class TestScalarVsVectorized:
    @pytest.mark.parametrize("policy", [MIN_PRECISION, MIXED_PRECISION, FULL_PRECISION])
    def test_agreement_within_accumulation_order(self, policy):
        mesh = refined_mesh()
        a = bump_state(mesh, policy)
        b = a.copy()
        dt = compute_timestep(mesh, a, 0.2)
        finite_diff_vectorized(mesh, a, dt)
        finite_diff_scalar(mesh, b, dt)
        eps = np.finfo(policy.compute_dtype).eps
        np.testing.assert_allclose(
            a.H.astype(np.float64), b.H.astype(np.float64), rtol=0, atol=8 * eps * 2.0
        )

    def test_scalar_conserves_mass_too(self):
        mesh = AmrMesh.uniform(6, 6)
        s = bump_state(mesh)
        area = mesh.cell_area()
        m0 = s.total_mass(area)
        for _ in range(5):
            dt = compute_timestep(mesh, s, 0.2)
            finite_diff_scalar(mesh, s, dt)
        assert s.total_mass(area) == pytest.approx(m0, rel=1e-13)


class TestSymmetry:
    def test_symmetric_problem_asymmetry_stays_at_rounding_level(self):
        # coarse_size must be a power of two so mirrored cell centers are
        # exact negations about the domain center.  Scatter-accumulation
        # order injects one-ulp asymmetries (the very effect the paper's
        # Fig. 2 measures), so we assert rounding-level, not bitwise,
        # symmetry: no *structural* asymmetry.
        mesh = AmrMesh.uniform(16, 16, coarse_size=1 / 16)
        s = bump_state(mesh)
        for _ in range(30):
            dt = compute_timestep(mesh, s, 0.2)
            finite_diff_vectorized(mesh, s, dt)
        img = mesh.sample_to_uniform(s.H)
        np.testing.assert_allclose(img, img[::-1, :], rtol=0, atol=1e-12)
        np.testing.assert_allclose(img, img[:, ::-1], rtol=0, atol=1e-12)
        np.testing.assert_allclose(img, img.T, rtol=0, atol=1e-12)


class TestTimestep:
    def test_cfl_scales_with_courant(self):
        mesh = AmrMesh.uniform(8, 8)
        s = lake_at_rest(mesh)
        assert compute_timestep(mesh, s, 0.4) == pytest.approx(
            2 * compute_timestep(mesh, s, 0.2)
        )

    def test_finer_cells_reduce_dt(self):
        coarse = AmrMesh.uniform(4, 4)
        fine = AmrMesh.uniform(4, 4, max_level=1, level=1)
        dt_c = compute_timestep(coarse, lake_at_rest(coarse), 0.25)
        dt_f = compute_timestep(fine, lake_at_rest(fine), 0.25)
        assert dt_f == pytest.approx(dt_c / 2)

    def test_velocity_reduces_dt(self):
        mesh = AmrMesh.uniform(4, 4)
        still = lake_at_rest(mesh)
        moving = ShallowWaterState(
            H=np.ones(16), U=np.full(16, 5.0), V=np.zeros(16), policy=FULL_PRECISION
        )
        assert compute_timestep(mesh, moving, 0.25) < compute_timestep(mesh, still, 0.25)

    def test_dry_guard(self):
        mesh = AmrMesh.uniform(2, 2)
        s = ShallowWaterState(
            H=np.zeros(4), U=np.zeros(4), V=np.zeros(4), policy=FULL_PRECISION
        )
        dt = compute_timestep(mesh, s, 0.25)
        assert np.isfinite(dt) and dt > 0

    def test_invalid_courant(self):
        mesh = AmrMesh.uniform(2, 2)
        with pytest.raises(ValueError):
            compute_timestep(mesh, lake_at_rest(mesh), 1.5)


class TestCounters:
    def test_kernel_counts_work(self):
        mesh = AmrMesh.uniform(4, 4)
        s = bump_state(mesh)
        c = KernelCounters()
        finite_diff_vectorized(mesh, s, 0.001, counters=c)
        f = FaceLists.from_mesh(mesh)
        assert c.flops == f.nfaces * 38 + mesh.ncells * 12
        assert c.state_bytes > 0

    def test_mixed_mode_compute_bytes_are_double_width(self):
        mesh = AmrMesh.uniform(4, 4)
        c_min = KernelCounters()
        c_mix = KernelCounters()
        finite_diff_vectorized(mesh, bump_state(mesh, MIN_PRECISION), 0.001, counters=c_min)
        finite_diff_vectorized(mesh, bump_state(mesh, MIXED_PRECISION), 0.001, counters=c_mix)
        assert c_mix.compute_bytes == 2 * c_min.compute_bytes
        assert c_mix.state_bytes == c_min.state_bytes  # both float32 state
