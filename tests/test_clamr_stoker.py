"""Validation of the CLAMR kernels against Stoker's exact dam break."""

import numpy as np
import pytest

from repro.clamr.kernels import FaceLists, compute_timestep, finite_diff_vectorized
from repro.clamr.mesh import AmrMesh
from repro.clamr.muscl import finite_diff_muscl
from repro.clamr.state import GRAVITY, ShallowWaterState
from repro.clamr.stoker import StokerSolution, solve_middle_state
from repro.precision.policy import FULL_PRECISION


class TestAnalyticSolution:
    def test_middle_state_satisfies_both_relations(self):
        h_m, u_m, s = solve_middle_state(2.0, 1.0)
        # rarefaction invariant
        assert u_m == pytest.approx(
            2.0 * (np.sqrt(GRAVITY * 2.0) - np.sqrt(GRAVITY * h_m)), rel=1e-10
        )
        # shock jump conditions (mass): s (h_m - h_r) = h_m u_m
        assert s * (h_m - 1.0) == pytest.approx(h_m * u_m, rel=1e-10)

    def test_middle_state_between_initials(self):
        h_m, u_m, s = solve_middle_state(2.0, 1.0)
        assert 1.0 < h_m < 2.0
        assert u_m > 0.0
        assert s > u_m  # shock outruns the fluid

    def test_limits(self):
        # nearly equal depths: a weak wave, h_m between and close to both
        h_m, u_m, _ = solve_middle_state(1.01, 1.0)
        assert 1.0 < h_m < 1.01
        assert u_m < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_middle_state(1.0, 2.0)
        with pytest.raises(ValueError):
            solve_middle_state(1.0, 0.0)

    def test_profile_regions(self):
        sol = StokerSolution(h_left=2.0, h_right=1.0, x0=0.0)
        t = 0.1
        x = np.array([-10.0, 10.0])
        np.testing.assert_allclose(sol.depth(x, t), [2.0, 1.0])
        np.testing.assert_allclose(sol.velocity(x, t), [0.0, 0.0])
        # middle state just behind the shock
        x_mid = np.array([(sol.shock_speed - 0.05 / t) * t])
        assert sol.depth(x_mid, t)[0] == pytest.approx(sol.h_middle, rel=1e-6)

    def test_profile_continuous_at_fan_edges(self):
        sol = StokerSolution(h_left=2.0, h_right=1.0)
        t = 0.2
        g = sol.gravity
        head = -np.sqrt(g * 2.0) * t
        tail = (sol.u_middle - np.sqrt(g * sol.h_middle)) * t
        for edge in (head, tail):
            left = sol.depth(np.array([edge - 1e-9]), t)[0]
            right = sol.depth(np.array([edge + 1e-9]), t)[0]
            assert left == pytest.approx(right, abs=1e-6)

    def test_initial_condition(self):
        sol = StokerSolution(h_left=2.0, h_right=1.0)
        np.testing.assert_allclose(sol.depth(np.array([-1.0, 1.0]), 0.0), [2.0, 1.0])


class TestKernelConvergence:
    def _simulate(self, nx: int, kernel, t_end: float = 0.06):
        """Pseudo-1D dam break on [0, 1], dam at 0.5."""
        mesh = AmrMesh.uniform(nx, 4, coarse_size=1.0 / nx)
        x, _ = mesh.cell_centers()
        H = np.where(x < 0.5, 2.0, 1.0)
        state = ShallowWaterState(
            H=H, U=np.zeros_like(H), V=np.zeros_like(H), policy=FULL_PRECISION
        )
        faces = FaceLists.from_mesh(mesh)
        t = 0.0
        while t < t_end:
            dt = min(compute_timestep(mesh, state, 0.2), t_end - t)
            kernel(mesh, state, dt, faces=faces)
            t += dt
        img = mesh.sample_to_uniform(state.H.astype(np.float64))
        profile = img[0, :]  # y-uniform problem: any row
        centers = (np.arange(nx) + 0.5) / nx
        return centers, profile, t

    @pytest.mark.parametrize("kernel", [finite_diff_vectorized, finite_diff_muscl])
    def test_matches_stoker(self, kernel):
        sol = StokerSolution(h_left=2.0, h_right=1.0, x0=0.5)
        x, h, t = self._simulate(128, kernel)
        exact = sol.depth(x, t)
        err = np.abs(h - exact)
        # L1 error: a first-order scheme at 128 cells resolves this to a few %
        assert err.mean() < 0.03
        # middle-state plateau value, sampled clear of the smeared shock
        # and fan tail (first order smears each over ~5 cells)
        plateau = (x > 0.5 + 0.06) & (x < 0.5 + (sol.shock_speed * t) - 0.06)
        assert plateau.any()
        assert np.abs(h[plateau] - sol.h_middle).max() < 0.03 * sol.h_middle

    def test_shock_position(self):
        sol = StokerSolution(h_left=2.0, h_right=1.0, x0=0.5)
        x, h, t = self._simulate(256, finite_diff_vectorized)
        # locate the numerical shock: steepest descent toward h_right
        mid = 0.5 * (sol.h_middle + 1.0)
        right_half = x > 0.5
        crossing = x[right_half][np.argmin(np.abs(h[right_half] - mid))]
        expected = 0.5 + sol.shock_speed * t
        assert crossing == pytest.approx(expected, abs=3.0 / 256)

    def test_first_order_convergence(self):
        sol = StokerSolution(h_left=2.0, h_right=1.0, x0=0.5)
        errors = []
        for nx in (64, 128, 256):
            x, h, t = self._simulate(nx, finite_diff_vectorized)
            errors.append(float(np.abs(h - sol.depth(x, t)).mean()))
        # L1 error must shrink with resolution at a healthy rate
        assert errors[0] > errors[1] > errors[2]
        rate = np.log2(errors[0] / errors[2]) / 2.0
        assert rate > 0.6  # ~0.7-1.0 typical for shocks with first order

    def test_muscl_beats_rusanov(self):
        sol = StokerSolution(h_left=2.0, h_right=1.0, x0=0.5)
        x, h_rus, t1 = self._simulate(128, finite_diff_vectorized)
        _, h_mus, t2 = self._simulate(128, finite_diff_muscl)
        e_rus = float(np.abs(h_rus - sol.depth(x, t1)).mean())
        e_mus = float(np.abs(h_mus - sol.depth(x, t2)).mean())
        assert e_mus < e_rus
