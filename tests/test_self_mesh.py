"""Unit tests for the hexahedral spectral-element mesh."""

import numpy as np
import pytest

from repro.self_.mesh import HexMesh


def mesh(nex=2, ney=3, nez=4, order=3, lengths=(2.0, 3.0, 4.0)):
    return HexMesh(nex=nex, ney=ney, nez=nez, lengths=lengths, order=order)


class TestBasics:
    def test_counts(self):
        m = mesh()
        assert m.nelem == 24
        assert m.npoints == 4
        assert m.ndof == 24 * 64

    def test_element_sizes(self):
        m = mesh()
        assert m.element_sizes == (1.0, 1.0, 1.0)

    def test_metric_factors(self):
        m = mesh(lengths=(4.0, 3.0, 4.0))
        mx, my, mz = m.metric_factors()
        assert mx == pytest.approx(1.0)
        assert my == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HexMesh(nex=0, ney=1, nez=1, lengths=(1, 1, 1), order=2)
        with pytest.raises(ValueError):
            HexMesh(nex=1, ney=1, nez=1, lengths=(0, 1, 1), order=2)
        with pytest.raises(ValueError):
            HexMesh(nex=1, ney=1, nez=1, lengths=(1, 1, 1), order=0)

    def test_element_indices_roundtrip(self):
        m = mesh()
        ix, iy, iz = m.element_indices()
        e = ix + m.nex * (iy + m.ney * iz)
        np.testing.assert_array_equal(e, np.arange(m.nelem))


class TestCoordinates:
    def test_ranges(self):
        m = mesh()
        x, y, z = m.node_coordinates()
        assert x.min() == 0.0 and x.max() == pytest.approx(2.0)
        assert y.min() == 0.0 and y.max() == pytest.approx(3.0)
        assert z.min() == 0.0 and z.max() == pytest.approx(4.0)

    def test_axes_vary_correctly(self):
        m = mesh()
        x, y, z = m.node_coordinates()
        # x varies along node axis 1 only
        assert np.ptp(x[0, :, 0, 0]) > 0
        assert np.ptp(x[0, 0, :, 0]) == 0
        assert np.ptp(x[0, 0, 0, :]) == 0
        # z varies along node axis 3 only
        assert np.ptp(z[0, 0, 0, :]) > 0
        assert np.ptp(z[0, :, 0, 0]) == 0

    def test_element_offsets(self):
        m = mesh()
        x, _, _ = m.node_coordinates()
        # element 1 is one x-step to the right of element 0
        np.testing.assert_allclose(x[1] - x[0], 1.0)

    def test_gll_endpoints_on_element_boundaries(self):
        m = mesh()
        x, _, _ = m.node_coordinates()
        assert x[0, 0, 0, 0] == 0.0
        assert x[0, -1, 0, 0] == pytest.approx(1.0)


class TestNeighbors:
    def test_interior_connectivity(self):
        m = mesh(nex=3, ney=3, nez=3)
        nbr = m.neighbors()
        center = 1 + 3 * (1 + 3 * 1)  # (1,1,1)
        assert nbr["xm"][center] == center - 1
        assert nbr["xp"][center] == center + 1
        assert nbr["ym"][center] == center - 3
        assert nbr["zp"][center] == center + 9

    def test_walls_marked(self):
        m = mesh(nex=2, ney=2, nez=2)
        nbr = m.neighbors()
        assert nbr["xm"][0] == -1
        assert nbr["ym"][0] == -1
        assert nbr["zm"][0] == -1
        assert nbr["xp"][m.nelem - 1] == -1

    def test_mutual_links(self):
        m = mesh(nex=4, ney=2, nez=3)
        nbr = m.neighbors()
        for e in range(m.nelem):
            r = nbr["xp"][e]
            if r >= 0:
                assert nbr["xm"][r] == e
            t = nbr["zp"][e]
            if t >= 0:
                assert nbr["zm"][t] == e

    def test_wall_counts(self):
        m = mesh(nex=3, ney=4, nez=5)
        nbr = m.neighbors()
        assert (nbr["xm"] < 0).sum() == 4 * 5
        assert (nbr["yp"] < 0).sum() == 3 * 5
        assert (nbr["zm"] < 0).sum() == 3 * 4
