"""Tests for the performance/power/precision/resolution trade space."""

import numpy as np
import pytest

from repro.machine.counters import WorkloadProfile
from repro.tradespace import (
    Constraint,
    DesignPoint,
    TradeSpace,
    accuracy_proxy,
    best_under_constraints,
    pareto_front,
)


def base_profiles():
    def profile(state_itemsize, compute_itemsize):
        # sized so runtimes are seconds, far above GPU launch overheads
        return WorkloadProfile(
            name="t",
            flops=5 * 10**11,
            state_bytes=10**11 * state_itemsize // 4,
            state_itemsize=state_itemsize,
            compute_itemsize=compute_itemsize,
            resident_state_bytes=10**8,
        )

    return {
        "min": profile(4, 4),
        "mixed": profile(4, 8),
        "full": profile(8, 8),
    }


def space(**kw):
    return TradeSpace(base_profiles(), truncation_constant=1e-2, rounding_constant=1.0, **kw)


class TestAccuracyProxy:
    def test_truncation_falls_with_resolution(self):
        assert accuracy_proxy(2.0, "full") < accuracy_proxy(1.0, "full")

    def test_convergence_order_respected(self):
        e1 = accuracy_proxy(1.0, "full", convergence_order=2.0)
        e2 = accuracy_proxy(2.0, "full", convergence_order=2.0)
        assert e1 / e2 == pytest.approx(4.0, rel=0.01)

    def test_precision_floor_appears_at_high_resolution(self):
        # at modest resolution min == full to within truncation
        lo_min = accuracy_proxy(1.0, "min")
        lo_full = accuracy_proxy(1.0, "full")
        assert lo_min == pytest.approx(lo_full, rel=1e-4)
        # at extreme resolution the float32 floor dominates min
        hi_min = accuracy_proxy(1e6, "min")
        hi_full = accuracy_proxy(1e6, "full")
        assert hi_min > 10 * hi_full

    def test_mixed_floor_below_min(self):
        assert accuracy_proxy(1e6, "mixed") < accuracy_proxy(1e6, "min")

    def test_half_floor_highest(self):
        assert accuracy_proxy(100.0, "half") > accuracy_proxy(100.0, "min")

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy_proxy(0.0, "min")


class TestTradeSpace:
    def test_enumerate_size(self):
        ts = space(devices=("haswell", "titanx"), resolutions=(1.0, 2.0))
        points = ts.enumerate()
        assert len(points) == 2 * 3 * 2

    def test_min_hires_beats_full_lores(self):
        """The Fig. 3 claim as a trade-space fact: at equal runtime budget,
        min precision at higher resolution achieves lower error."""
        ts = space(devices=("haswell",), resolutions=(1.0, 2.0))
        full_lo = ts.evaluate("haswell", "full", 1.0)
        min_hi = ts.evaluate("haswell", "min", 2.0)
        assert min_hi.error < full_lo.error
        # and the runtime premium is far below the 8x the resolution costs
        # at full precision (work ∝ r^3, bytes halved by min)
        full_hi = ts.evaluate("haswell", "full", 2.0)
        assert min_hi.runtime_s < full_hi.runtime_s

    def test_memory_scales_with_resolution_not_steps(self):
        ts = space(devices=("haswell",))
        m1 = ts.evaluate("haswell", "full", 1.0).memory_gb
        m2 = ts.evaluate("haswell", "full", 2.0).memory_gb
        base = 1.45  # device base memory
        assert (m2 - base) / (m1 - base) == pytest.approx(4.0, rel=0.01)

    def test_calibration(self):
        ts = space()
        ts.calibrate_accuracy(5e-3, at_resolution=2.0)
        assert ts.evaluate("haswell", "full", 2.0).error == pytest.approx(5e-3, rel=0.01)

    def test_unknown_level_rejected(self):
        ts = space()
        with pytest.raises(KeyError):
            ts.evaluate("haswell", "half", 1.0)

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError):
            TradeSpace({})


class TestPareto:
    def make_points(self):
        ts = space(devices=("haswell", "titanx", "p100"), resolutions=(0.5, 1.0, 2.0))
        return ts.enumerate()

    def test_front_is_nondominated(self):
        points = self.make_points()
        front = pareto_front(points)
        assert front
        for a in front:
            assert not any(b.dominates(a) for b in points)

    def test_front_smaller_than_space(self):
        points = self.make_points()
        assert len(pareto_front(points)) < len(points)

    def test_dominance_definition(self):
        a = DesignPoint("d", "min", 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
        b = DesignPoint("d", "min", 1.0, 2.0, 2.0, 2.0, 2.0, 2.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_mixed_objectives_both_survive(self):
        fast_inaccurate = DesignPoint("d", "min", 1.0, 1.0, 1.0, 1.0, 9.0, 1.0)
        slow_accurate = DesignPoint("d", "full", 1.0, 9.0, 9.0, 9.0, 1.0, 9.0)
        front = pareto_front([fast_inaccurate, slow_accurate])
        assert len(front) == 2


class TestConstrainedSelection:
    def test_best_under_energy_budget(self):
        ts = space(devices=("haswell", "titanx"), resolutions=(1.0, 2.0, 4.0))
        points = ts.enumerate()
        unconstrained = best_under_constraints(points, objective="error")
        budget = unconstrained.energy_j / 4
        constrained = best_under_constraints(
            points, objective="error", constraints=[Constraint("energy_j", budget)]
        )
        assert constrained.energy_j <= budget
        assert constrained.error >= unconstrained.error

    def test_infeasible_raises_with_context(self):
        ts = space(devices=("haswell",), resolutions=(1.0,))
        with pytest.raises(ValueError, match="no design point"):
            best_under_constraints(
                ts.enumerate(), objective="runtime_s", constraints=[Constraint("energy_j", 1e-12)]
            )

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            Constraint("speed", 1.0)
        with pytest.raises(ValueError):
            best_under_constraints([], objective="speed")

    def test_reduced_precision_wins_under_tight_budgets(self):
        """The paper's thesis as an optimization outcome: under a tight
        energy budget at fixed resolution, the optimizer picks a reduced-
        precision configuration."""
        ts = space(devices=("titanx",), resolutions=(1.0,))
        points = ts.enumerate()
        full = next(p for p in points if p.level == "full")
        choice = best_under_constraints(
            points,
            objective="error",
            constraints=[Constraint("energy_j", full.energy_j * 0.5)],
        )
        assert choice.level in ("min", "mixed")
