"""Unit + property tests for repro.precision.emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision.emulation import (
    FORMAT_LADDER,
    EmulatedDtype,
    machine_epsilon,
    quantize_to_bfloat16,
    quantize_to_half,
    truncate_mantissa,
)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=1e30
)


class TestHalf:
    def test_exact_values_pass_through(self):
        x = np.array([0.0, 1.0, 2.0, -0.5, 1024.0])
        np.testing.assert_array_equal(quantize_to_half(x), x)

    def test_rounding_matches_float16(self):
        x = np.array([1.0 + 2**-12], dtype=np.float64)
        assert quantize_to_half(x)[0] == float(np.float16(x[0]))

    def test_overflow_to_inf(self):
        assert np.isinf(quantize_to_half(np.array([1e6]))[0])

    def test_preserves_input_dtype(self):
        assert quantize_to_half(np.ones(3, dtype=np.float32)).dtype == np.float32
        assert quantize_to_half(np.ones(3, dtype=np.float64)).dtype == np.float64


class TestBfloat16:
    def test_exact_values_pass_through(self):
        x = np.array([0.0, 1.0, -2.0, 0.5, 3.0], dtype=np.float32)
        np.testing.assert_array_equal(quantize_to_bfloat16(x), x)

    def test_mantissa_limited_to_7_bits(self):
        out = quantize_to_bfloat16(np.array([1.0 + 2**-9], dtype=np.float32))
        # 2^-9 is below the bf16 resolution at 1.0 (2^-8); rounds to nearest even
        assert out[0] in (1.0, 1.0 + 2**-7)

    def test_large_dynamic_range_survives(self):
        x = np.array([1e30, -1e-30], dtype=np.float32)
        out = quantize_to_bfloat16(x)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, x, rtol=2**-7)

    def test_nan_stays_nan(self):
        assert np.isnan(quantize_to_bfloat16(np.array([np.nan], dtype=np.float32)))[0]

    @given(finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_relative_error_bounded(self, value):
        out = float(quantize_to_bfloat16(np.array([value], dtype=np.float64))[0])
        f32 = float(np.float32(value))
        if f32 == 0.0 or not np.isfinite(f32):
            return
        # absolute slack covers the bf16 subnormal range (values below
        # ~9e-41 legitimately flush toward zero)
        assert abs(out - f32) <= abs(f32) * 2**-8 + 1e-40


class TestTruncateMantissa:
    def test_full_width_is_identity(self):
        x = np.array([np.pi, -np.e, 1e-10])
        np.testing.assert_array_equal(truncate_mantissa(x, 52), x)

    def test_23_bits_at_least_float32_info(self):
        x = np.array([np.pi])
        out = truncate_mantissa(x, 23)
        assert abs(out[0] - np.pi) <= abs(np.pi) * 2**-23

    def test_zero_bits_keeps_power_of_two(self):
        out = truncate_mantissa(np.array([1.75, 5.0]), 0)
        np.testing.assert_array_equal(out, [1.0, 4.0])

    def test_float32_input_path(self):
        x = np.array([1.0 + 2**-20], dtype=np.float32)
        out = truncate_mantissa(x, 10)
        assert out.dtype == np.float32
        assert out[0] == 1.0

    def test_out_of_range_bits_raises(self):
        with pytest.raises(ValueError):
            truncate_mantissa(np.ones(2), 53)
        with pytest.raises(ValueError):
            truncate_mantissa(np.ones(2), -1)

    @given(finite_floats, st.integers(min_value=0, max_value=52))
    @settings(max_examples=200, deadline=None)
    def test_truncation_never_increases_magnitude(self, value, bits):
        out = float(truncate_mantissa(np.array([value]), bits)[0])
        assert abs(out) <= abs(value)
        # and keeps the sign (or is zero)
        assert out == 0.0 or np.sign(out) == np.sign(value)

    @given(finite_floats, st.integers(min_value=0, max_value=52))
    @settings(max_examples=200, deadline=None)
    def test_truncation_error_within_one_ulp(self, value, bits):
        out = float(truncate_mantissa(np.array([value]), bits)[0])
        assert abs(value - out) <= abs(value) * machine_epsilon(bits) + 1e-300

    @given(finite_floats, st.integers(min_value=0, max_value=52))
    @settings(max_examples=100, deadline=None)
    def test_truncation_is_idempotent(self, value, bits):
        once = truncate_mantissa(np.array([value]), bits)
        twice = truncate_mantissa(once, bits)
        np.testing.assert_array_equal(once, twice)


class TestLadder:
    def test_epsilons_match_ieee(self):
        assert machine_epsilon(23) == np.finfo(np.float32).eps
        assert machine_epsilon(52) == np.finfo(np.float64).eps
        assert machine_epsilon(10) == np.finfo(np.float16).eps

    def test_ladder_is_monotone_in_storage(self):
        sizes = [f.storage_bytes for f in FORMAT_LADDER]
        assert sizes == sorted(sizes)

    def test_quantize_through_named_format(self):
        fp24 = next(f for f in FORMAT_LADDER if f.name == "fp24")
        # 2^-20 is finer than fp24's 16-bit mantissa; truncation drops it
        assert fp24.quantize(np.array([1.0 + 2**-20]))[0] == 1.0
        # 2^-15 is representable and survives
        assert fp24.quantize(np.array([1.0 + 2**-15]))[0] == 1.0 + 2**-15

    def test_emulated_dtype_epsilon(self):
        d = EmulatedDtype("x", mantissa_bits=8, storage_bytes=2)
        assert d.epsilon == 2**-8
