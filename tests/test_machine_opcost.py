"""Tests for the bottom-up energy model."""

import pytest

from repro.machine.counters import WorkloadProfile
from repro.machine.opcost import DEFAULT_COSTS, OperationCosts, estimate_energy_bottomup
from repro.machine.specs import device


def profile(state_itemsize=8, compute_itemsize=8, flops=10**12, state_bytes=10**12):
    return WorkloadProfile(
        name="t",
        flops=flops,
        state_bytes=state_bytes,
        state_itemsize=state_itemsize,
        compute_itemsize=compute_itemsize,
        resident_state_bytes=0,
    )


class TestCosts:
    def test_dp_more_expensive_than_sp(self):
        assert DEFAULT_COSTS.pj_per_flop(8) > DEFAULT_COSTS.pj_per_flop(4) > DEFAULT_COSTS.pj_per_flop(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            OperationCosts(pj_per_flop_dp=0.0)
        with pytest.raises(ValueError):
            OperationCosts(static_fraction_of_tdp=1.0)


class TestBottomUp:
    def test_components_add(self):
        p = profile()
        dev = device("haswell")
        e = estimate_energy_bottomup(p, dev, runtime_s=10.0)
        flop_part = 10**12 * 20e-12
        mem_part = 10**12 * 15e-12
        static = 105.0 * 0.30 * 10.0
        assert e.energy_joules == pytest.approx(flop_part + mem_part + static)

    def test_precision_savings_exceed_runtime_savings(self):
        """The module's reason to exist: bottom-up, min precision saves on
        every term, so the energy ratio beats the runtime ratio."""
        dev = device("haswell")
        full = profile(state_itemsize=8, compute_itemsize=8)
        minp = profile(
            state_itemsize=4, compute_itemsize=4, state_bytes=full.state_bytes // 2
        )
        t_full, t_min = 10.0, 6.0  # some runtime gain
        e_full = estimate_energy_bottomup(full, dev, t_full).energy_joules
        e_min = estimate_energy_bottomup(minp, dev, t_min).energy_joules
        runtime_ratio = t_min / t_full
        energy_ratio = e_min / e_full
        assert energy_ratio < runtime_ratio

    def test_tdp_times_time_is_blind_to_op_width(self):
        """Contrast case: the paper's estimator only sees the runtime."""
        from repro.machine.energy import estimate_energy

        dev = device("p100")
        same_runtime = 5.0
        a = estimate_energy(dev, same_runtime).energy_joules
        b = estimate_energy(dev, same_runtime).energy_joules
        assert a == b  # no dependence on what ran

    def test_zero_runtime(self):
        e = estimate_energy_bottomup(profile(), device("haswell"), 0.0)
        assert e.energy_joules > 0  # dynamic part remains
        assert e.power_watts > 0

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            estimate_energy_bottomup(profile(), device("haswell"), -1.0)

    def test_fixed_bytes_priced(self):
        import dataclasses

        p = profile()
        p2 = dataclasses.replace(p, fixed_bytes=10**12)
        dev = device("haswell")
        a = estimate_energy_bottomup(p, dev, 1.0).energy_joules
        b = estimate_energy_bottomup(p2, dev, 1.0).energy_joules
        assert b - a == pytest.approx(10**12 * 15e-12)
