"""Unit tests for repro.precision.context."""

import threading

import numpy as np
import pytest

from repro.precision.context import (
    cast_compute,
    cast_graphics,
    cast_state,
    current_policy,
    precision_scope,
)
from repro.precision.policy import FULL_PRECISION, MIN_PRECISION, PrecisionLevel


class TestScope:
    def test_default_is_full(self):
        assert current_policy().state_dtype == np.float64

    def test_scope_by_name(self):
        with precision_scope("min"):
            assert current_policy().state_dtype == np.float32
        assert current_policy().state_dtype == np.float64

    def test_scope_by_level(self):
        with precision_scope(PrecisionLevel.MIXED):
            assert current_policy().compute_dtype == np.float64
            assert current_policy().state_dtype == np.float32

    def test_scope_by_policy_object(self):
        with precision_scope(MIN_PRECISION) as pol:
            assert pol is MIN_PRECISION
            assert current_policy() is MIN_PRECISION

    def test_nesting_restores_outer(self):
        with precision_scope("min"):
            with precision_scope("full"):
                assert current_policy().state_dtype == np.float64
            assert current_policy().state_dtype == np.float32

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with precision_scope("min"):
                raise RuntimeError("boom")
        assert current_policy() is FULL_PRECISION

    def test_thread_isolation(self):
        seen = {}

        def worker():
            seen["thread"] = current_policy().state_dtype

        with precision_scope("min"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # a fresh thread gets the default policy, not the caller's scope
        assert seen["thread"] == np.float64


class TestCasts:
    def test_cast_state_uses_active_policy(self):
        x = np.ones(4, dtype=np.float64)
        with precision_scope("min"):
            assert cast_state(x).dtype == np.float32

    def test_cast_state_no_copy_when_dtype_matches(self):
        x = np.ones(4, dtype=np.float64)
        assert cast_state(x, FULL_PRECISION) is x

    def test_cast_compute_promotes_in_mixed(self):
        x = np.ones(4, dtype=np.float32)
        with precision_scope("mixed"):
            assert cast_compute(x).dtype == np.float64

    def test_cast_graphics_always_float32(self):
        x = np.ones(4, dtype=np.float64)
        for level in ("min", "mixed", "full"):
            with precision_scope(level):
                assert cast_graphics(x).dtype == np.float32

    def test_explicit_policy_overrides_context(self):
        x = np.ones(4)
        with precision_scope("full"):
            assert cast_state(x, MIN_PRECISION).dtype == np.float32
