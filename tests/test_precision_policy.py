"""Unit tests for repro.precision.policy."""

import numpy as np
import pytest

from repro.precision.policy import (
    FULL_PRECISION,
    HALF_PRECISION,
    MIN_PRECISION,
    MIXED_PRECISION,
    ArrayRole,
    PrecisionLevel,
    PrecisionPolicy,
    level_from_name,
)


class TestPrecisionLevel:
    def test_rank_ordering(self):
        assert PrecisionLevel.HALF < PrecisionLevel.MIN < PrecisionLevel.MIXED < PrecisionLevel.FULL

    def test_comparisons_are_consistent(self):
        assert PrecisionLevel.FULL >= PrecisionLevel.FULL
        assert PrecisionLevel.FULL > PrecisionLevel.MIN
        assert PrecisionLevel.MIN <= PrecisionLevel.MIXED
        assert not PrecisionLevel.FULL < PrecisionLevel.HALF

    def test_comparison_with_other_type_raises(self):
        with pytest.raises(TypeError):
            _ = PrecisionLevel.MIN < 3


class TestLevelFromName:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("min", PrecisionLevel.MIN),
            ("minimum", PrecisionLevel.MIN),
            ("single", PrecisionLevel.MIN),
            ("fp32", PrecisionLevel.MIN),
            ("mixed", PrecisionLevel.MIXED),
            ("full", PrecisionLevel.FULL),
            ("double", PrecisionLevel.FULL),
            ("fp64", PrecisionLevel.FULL),
            ("half", PrecisionLevel.HALF),
            ("FP16", PrecisionLevel.HALF),
            ("  Full  ", PrecisionLevel.FULL),
        ],
    )
    def test_synonyms(self, name, expected):
        assert level_from_name(name) is expected

    def test_passthrough(self):
        assert level_from_name(PrecisionLevel.MIXED) is PrecisionLevel.MIXED

    def test_unknown_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown precision level"):
            level_from_name("quadruple")


class TestPolicyDtypes:
    def test_min_is_float32_throughout_numerics(self):
        assert MIN_PRECISION.state_dtype == np.float32
        assert MIN_PRECISION.compute_dtype == np.float32
        assert MIN_PRECISION.accumulate_dtype == np.float32

    def test_mixed_stores_single_computes_double(self):
        assert MIXED_PRECISION.state_dtype == np.float32
        assert MIXED_PRECISION.compute_dtype == np.float64
        assert MIXED_PRECISION.accumulate_dtype == np.float64

    def test_full_is_double_throughout(self):
        assert FULL_PRECISION.state_dtype == np.float64
        assert FULL_PRECISION.compute_dtype == np.float64

    def test_half_state_is_binary16(self):
        assert HALF_PRECISION.state_dtype == np.float16
        assert HALF_PRECISION.compute_dtype == np.float32

    @pytest.mark.parametrize("policy", [HALF_PRECISION, MIN_PRECISION, MIXED_PRECISION, FULL_PRECISION])
    def test_graphics_always_float32(self, policy):
        # paper §IV-C: plotting stays single precision at every level
        assert policy.graphics_dtype == np.float32

    def test_dtype_accepts_role_string(self):
        assert FULL_PRECISION.dtype("state") == np.float64
        assert FULL_PRECISION.dtype(ArrayRole.COMPUTE) == np.float64


class TestOverrides:
    def test_with_overrides_returns_new_policy(self):
        p = MIN_PRECISION.with_overrides(accumulate=np.float64)
        assert p.accumulate_dtype == np.float64
        assert MIN_PRECISION.accumulate_dtype == np.float32  # original untouched

    def test_overrides_stack(self):
        p = MIN_PRECISION.with_overrides(accumulate=np.float64).with_overrides(compute=np.float64)
        assert p.accumulate_dtype == np.float64
        assert p.compute_dtype == np.float64
        assert p.state_dtype == np.float32

    def test_promoted_accumulators_min(self):
        p = MIN_PRECISION.promoted_accumulators()
        assert p.accumulate_dtype == np.float64

    def test_promoted_accumulators_half(self):
        # half computes in float32, so accumulators promote to float64
        p = HALF_PRECISION.promoted_accumulators()
        assert p.accumulate_dtype == np.float64

    def test_promoted_accumulators_full_goes_to_longdouble(self):
        p = FULL_PRECISION.promoted_accumulators()
        assert p.accumulate_dtype == np.longdouble

    def test_invalid_role_raises(self):
        with pytest.raises(ValueError):
            MIN_PRECISION.with_overrides(bogus=np.float64)


class TestMisc:
    def test_state_bytes_per_value(self):
        assert MIN_PRECISION.state_bytes_per_value() == 4
        assert FULL_PRECISION.state_bytes_per_value() == 8
        assert HALF_PRECISION.state_bytes_per_value() == 2

    def test_describe_mentions_all_roles(self):
        text = MIXED_PRECISION.describe()
        for word in ("state=float32", "compute=float64", "graphics=float32"):
            assert word in text

    def test_from_level_accepts_string(self):
        assert PrecisionPolicy.from_level("double").level is PrecisionLevel.FULL

    def test_policies_are_hashable_and_frozen(self):
        with pytest.raises(Exception):
            MIN_PRECISION.level = PrecisionLevel.FULL  # type: ignore[misc]
