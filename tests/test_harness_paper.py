"""Tests for the paper reference data and shape checking, plus the
end-to-end paper-vs-measured ordering checks at small scale."""

import pytest

from repro.harness.experiments import (
    run_clamr_levels,
    run_self_precisions,
    table1_clamr_architectures,
    table5_self_architectures,
)
from repro.harness.paper import (
    FIGURE_CLAIMS,
    TABLE1_RUNTIMES,
    TABLE4_COMPILERS,
    TABLE5_RUNTIMES,
    TABLE7_COSTS,
    ShapeCheck,
    check_ordering,
)


class TestReferenceData:
    def test_table1_devices(self):
        assert len(TABLE1_RUNTIMES) == 5
        assert "Tesla P100" not in TABLE1_RUNTIMES  # no P100 in Table I

    def test_table4_inversion_is_in_the_data(self):
        assert TABLE4_COMPILERS["GNU"]["single"] > TABLE4_COMPILERS["GNU"]["double"]
        assert TABLE4_COMPILERS["Intel"]["single"] < TABLE4_COMPILERS["Intel"]["double"]

    def test_table5_titanx_ratio(self):
        t = TABLE5_RUNTIMES["GTX TITAN X"]
        assert t["double"] / t["single"] == pytest.approx(3.09, abs=0.02)

    def test_table7_savings(self):
        c = TABLE7_COSTS["CLAMR total"]
        assert 1 - c["min"] / c["full"] == pytest.approx(0.23, abs=0.01)
        s = TABLE7_COSTS["SELF total"]
        assert 1 - s["single"] / s["double"] == pytest.approx(0.20, abs=0.01)

    def test_figure_claims_present(self):
        assert set(FIGURE_CLAIMS) == {"fig1", "fig2", "fig3", "fig4", "fig5"}


class TestCheckOrdering:
    def test_matching_order_passes(self):
        check = check_ordering(
            "x", "c", measured={"a": 1.0, "b": 2.0}, reference={"a": 10.0, "b": 20.0}
        )
        assert check.passed
        assert "a=1" in check.evidence

    def test_measured_tie_accepted(self):
        # a memory-bound device can collapse min and mixed legitimately
        check = check_ordering(
            "x", "c", measured={"a": 2.0, "b": 2.0}, reference={"a": 10.0, "b": 20.0}
        )
        assert check.passed

    def test_inverted_order_fails(self):
        check = check_ordering(
            "x", "c", measured={"a": 3.0, "b": 2.0}, reference={"a": 10.0, "b": 20.0}
        )
        assert not check.passed

    def test_reference_tie_imposes_nothing(self):
        check = check_ordering(
            "x", "c", measured={"a": 5.0, "b": 1.0}, reference={"a": 7.0, "b": 7.0}
        )
        assert check.passed

    def test_missing_measured_keys_skipped(self):
        check = check_ordering("x", "c", measured={"a": 1.0}, reference={"a": 2.0, "b": 3.0})
        assert check.passed

    def test_str_rendering(self):
        s = str(ShapeCheck(name="n", claim="c", passed=False, evidence="e"))
        assert "FAIL" in s and "n" in s


class TestEndToEndOrderings:
    """The reproduction's core contract, executed at small scale: measured
    per-device precision orderings match the paper's."""

    @pytest.fixture(scope="class")
    def table1(self):
        runs = run_clamr_levels(nx=24, steps=60)
        return table1_clamr_architectures(runs, nx=24, steps=60)

    @pytest.fixture(scope="class")
    def table5(self):
        runs = run_self_precisions(elems=3, order=3, steps=30)
        return table5_self_architectures(runs, elems=3, order=3, steps=30)

    def test_table1_per_device_orderings(self, table1):
        for row in table1.rows:
            arch = row[0]
            measured = {"min": row[4], "mixed": row[5], "full": row[6]}
            check = check_ordering(
                f"table1/{arch}", "min <= mixed <= full", measured, TABLE1_RUNTIMES[arch]
            )
            assert check.passed, check.evidence

    def test_table5_per_device_orderings(self, table5):
        for row in table5.rows:
            arch = row[0]
            measured = {"single": row[3], "double": row[4]}
            check = check_ordering(
                f"table5/{arch}", "single < double", measured, TABLE5_RUNTIMES[arch]
            )
            assert check.passed, check.evidence
