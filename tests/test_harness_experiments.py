"""Shape tests for the table/figure generators at small scale.

These assert the paper's *qualitative* claims — orderings and rough
factors — on fast, small runs.  The benchmark harness runs the same
generators at paper-shaped sizes.
"""

import numpy as np
import pytest

from repro.harness.experiments import (
    fig1_clamr_slices,
    fig2_clamr_asymmetry,
    fig3_precision_resolution,
    fig4_self_slices,
    fig5_self_asymmetry,
    run_clamr_levels,
    run_self_precisions,
    table1_clamr_architectures,
    table2_clamr_energy,
    table3_vectorization,
    table4_compilers,
    table5_self_architectures,
    table6_self_energy,
    table7_cost,
)

NX, STEPS = 24, 60
ELEMS, ORDER, SSTEPS = 3, 3, 30


@pytest.fixture(scope="module")
def clamr_runs():
    return run_clamr_levels(nx=NX, steps=STEPS)


@pytest.fixture(scope="module")
def self_runs():
    return run_self_precisions(elems=ELEMS, order=ORDER, steps=SSTEPS)


class TestTable1(object):
    def test_orderings(self, clamr_runs):
        t = table1_clamr_architectures(clamr_runs, nx=NX, steps=STEPS)
        assert len(t.rows) == 5
        for row in t.rows:
            _, mem_min, mem_mixed, mem_full, run_min, run_mixed, run_full, speedup = row
            assert run_min <= run_mixed <= run_full * 1.0001
            assert mem_min <= mem_full
            assert speedup > 0

    def test_titanx_largest_speedup(self, clamr_runs):
        t = table1_clamr_architectures(clamr_runs, nx=NX, steps=STEPS)
        speedups = dict(zip(t.column("Arch"), t.column("Speedup (%)")))
        assert speedups["GTX TITAN X"] == max(speedups.values())
        assert speedups["GTX TITAN X"] > 200  # paper: 453%

    def test_cpu_speedups_modest(self, clamr_runs):
        t = table1_clamr_architectures(clamr_runs, nx=NX, steps=STEPS)
        speedups = dict(zip(t.column("Arch"), t.column("Speedup (%)")))
        assert speedups["Haswell"] < 100  # paper: 19%


class TestTable2(object):
    def test_energy_orderings(self, clamr_runs):
        t = table2_clamr_energy(clamr_runs, nx=NX, steps=STEPS)
        for row in t.rows:
            _, e_min, e_mixed, e_full = row
            assert e_min <= e_mixed <= e_full * 1.0001

    def test_titanx_min_energy_smallest_per_device(self, clamr_runs):
        t = table2_clamr_energy(clamr_runs, nx=NX, steps=STEPS)
        row = t.row_by_label("GTX TITAN X")
        assert row[1] < row[3] / 3  # paper: 700 vs 3175 J


class TestTable3(object):
    @pytest.fixture(scope="class")
    def table(self):
        return table3_vectorization(nx=16, steps=30)

    def test_vectorized_modeled_faster_than_scalar(self, table):
        vec = table.row_by_label("modelled Haswell vectorized (s)")
        unvec = table.row_by_label("modelled Haswell unvectorized (s)")
        for v, u in zip(vec[1:], unvec[1:]):
            assert v < u

    def test_vectorized_precision_ordering(self, table):
        _, v_min, v_mixed, v_full = table.row_by_label("modelled Haswell vectorized (s)")
        assert v_min < v_full
        assert v_min <= v_mixed <= v_full * 1.001
        # paper: 1.9x speedup in vectorized finite_diff at min vs full
        assert 1.3 < v_full / v_min < 2.5

    def test_unvectorized_mixed_close_to_full(self, table):
        _, u_min, u_mixed, u_full = table.row_by_label("modelled Haswell unvectorized (s)")
        assert u_min < u_mixed <= u_full * 1.05
        # paper: only ~10% gain unvectorized
        assert u_full / u_min < 1.35

    def test_measured_python_vectorization_wins_big(self, table):
        sca = table.row_by_label("measured python scalar (s)")
        vec = table.row_by_label("measured numpy vectorized (s)")
        assert sca[3] / vec[3] > 3.0  # NumPy >> pure-Python loop

    def test_checkpoint_ratio(self, table):
        _, c_min, c_mixed, c_full = table.row_by_label("checkpoint size (MB)")
        assert c_min == c_mixed
        assert c_min / c_full == pytest.approx(2 / 3, abs=0.01)


class TestTable4(object):
    def test_gnu_inversion_and_intel_normal(self):
        t = table4_compilers(elems=ELEMS, order=ORDER, steps=20)
        gnu = t.row_by_label("GNU")
        intel = t.row_by_label("Intel")
        assert gnu[1] > gnu[2]  # GNU: single SLOWER than double
        assert intel[1] < intel[2]  # Intel: single faster
        assert gnu[2] == pytest.approx(intel[2], rel=0.1)  # doubles similar


class TestTable5(object):
    def test_single_always_wins(self, self_runs):
        t = table5_self_architectures(self_runs, elems=ELEMS, order=ORDER, steps=SSTEPS)
        assert len(t.rows) == 6
        for row in t.rows:
            _, mem_s, mem_d, run_s, run_d, speedup = row
            assert run_s < run_d
            assert mem_s < mem_d
            assert speedup > 0

    def test_titanx_dominates(self, self_runs):
        t = table5_self_architectures(self_runs, elems=ELEMS, order=ORDER, steps=SSTEPS)
        speedups = dict(zip(t.column("Arch"), t.column("Speedup (%)")))
        assert speedups["GTX TITAN X"] == max(speedups.values())
        assert speedups["GTX TITAN X"] > 150  # paper: 309%

    def test_scientific_gpus_modest(self, self_runs):
        t = table5_self_architectures(self_runs, elems=ELEMS, order=ORDER, steps=SSTEPS)
        speedups = dict(zip(t.column("Arch"), t.column("Speedup (%)")))
        assert speedups["Tesla P100"] < 120  # paper: 28%

    def test_titanx_single_competes_with_p100_double(self, self_runs):
        """Paper §V-B2: 'SELF with single precision on the TITAN X
        outperformed SELF using double precision on the P100.'"""
        t = table5_self_architectures(self_runs, elems=ELEMS, order=ORDER, steps=SSTEPS)
        titan_single = t.row_by_label("GTX TITAN X")[3]
        p100_double = t.row_by_label("Tesla P100")[4]
        assert titan_single < p100_double * 1.2


class TestTable6(object):
    def test_energy_savings_everywhere(self, self_runs):
        t = table6_self_energy(self_runs, elems=ELEMS, order=ORDER, steps=SSTEPS)
        for row in t.rows:
            _, e_single, e_double = row
            assert e_single < e_double

    def test_titanx_ratio_largest(self, self_runs):
        t = table6_self_energy(self_runs, elems=ELEMS, order=ORDER, steps=SSTEPS)
        ratios = {row[0]: row[2] / row[1] for row in t.rows}
        assert ratios["GTX TITAN X"] == max(ratios.values())


class TestTable7(object):
    def test_savings_shape(self, clamr_runs, self_runs):
        t = table7_cost(
            clamr_runs, self_runs, nx=NX, steps=STEPS,
            self_elems=ELEMS, self_order=ORDER, self_steps=SSTEPS,
        )
        clamr_total = t.row_by_label("CLAMR total")
        assert clamr_total[1] < clamr_total[2] < clamr_total[3]
        saving = 1 - clamr_total[1] / clamr_total[3]
        assert 0.1 < saving < 0.5  # paper: 23%
        self_total = t.row_by_label("SELF total")
        saving_self = 1 - self_total[1] / self_total[3]
        assert 0.1 < saving_self < 0.4  # paper: 20%

    def test_self_storage_precision_blind(self, clamr_runs, self_runs):
        t = table7_cost(
            clamr_runs, self_runs, nx=NX, steps=STEPS,
            self_elems=ELEMS, self_order=ORDER, self_steps=SSTEPS,
        )
        row = t.row_by_label("SELF storage")
        assert row[1] == row[3]

    def test_clamr_storage_ratio_two_thirds(self, clamr_runs, self_runs):
        t = table7_cost(
            clamr_runs, self_runs, nx=NX, steps=STEPS,
            self_elems=ELEMS, self_order=ORDER, self_steps=SSTEPS,
        )
        row = t.row_by_label("CLAMR storage")
        assert row[1] / row[3] == pytest.approx(2 / 3, abs=0.02)


class TestFigures(object):
    def test_fig1_differences_small(self, clamr_runs):
        f = fig1_clamr_slices(clamr_runs)
        scale = np.max(np.abs(f.get("height/full").y))
        dmin = np.max(np.abs(f.get("diff full-min").y))
        assert dmin < scale * 1e-3  # several orders below the solution
        assert len(f.series) == 6

    def test_fig2_full_precision_most_symmetric(self, clamr_runs):
        f = fig2_clamr_asymmetry(clamr_runs)
        a_full = np.max(np.abs(f.get("full").y))
        a_min = np.max(np.abs(f.get("min").y))
        assert a_full <= a_min + 1e-15

    def test_fig3_hires_has_more_structure(self):
        f = fig3_precision_resolution(nx_lo=16, steps_hint=50)
        lo = f.get("full/16").y
        hi = f.get("min/32").y
        # total variation as the "detail" metric
        tv_lo = np.abs(np.diff(lo)).sum()
        tv_hi = np.abs(np.diff(hi)).sum()
        assert tv_hi > tv_lo

    def test_fig4_diff_orders_below_anomaly(self, self_runs):
        f = fig4_self_slices(self_runs)
        scale = np.max(np.abs(f.get("double").y))
        diff = np.max(np.abs(f.get("diff double-single").y))
        assert diff < scale * 0.1

    def test_fig5_double_asymmetry_tiny(self, self_runs):
        f = fig5_self_asymmetry(self_runs)
        a_double = np.max(np.abs(f.get("double").y))
        a_single = np.max(np.abs(f.get("single").y))
        assert a_double <= a_single + 1e-15
        scale = 2e-3  # anomaly scale
        assert a_double < scale * 1e-6
