"""Tests for the bit-level precision sweep machinery."""

import numpy as np
import pytest

from repro.precision.bitsweep import BitSweepResult, minimum_safe_bits, sweep_mantissa_bits


def synthetic_run(width: int) -> float:
    """Error that halves per extra bit — the ideal rounding-limited curve."""
    return 2.0 ** (-width)


class TestSweep:
    def test_curve_shape(self):
        result = sweep_mantissa_bits(synthetic_run, widths=(4, 8, 16))
        assert result.widths == (4, 8, 16)
        assert result.errors == (2.0**-4, 2.0**-8, 2.0**-16)
        assert result.monotone

    def test_widths_normalized(self):
        result = sweep_mantissa_bits(synthetic_run, widths=(16, 4, 8, 8))
        assert result.widths == (4, 8, 16)

    def test_recommendation(self):
        result = sweep_mantissa_bits(synthetic_run, widths=(4, 8, 16, 23), error_bound=1e-3)
        assert result.recommended_bits == 16  # 2^-16 is the first <= 1e-3... 2^-8=4e-3>1e-3
        assert result.error_bound == 1e-3

    def test_no_width_meets_bound(self):
        result = sweep_mantissa_bits(synthetic_run, widths=(2, 4), error_bound=1e-9)
        assert result.recommended_bits is None

    def test_nonmonotone_flagged(self):
        errors = {4: 1.0, 8: 2.0, 16: 0.5}
        result = sweep_mantissa_bits(lambda w: errors[w], widths=(4, 8, 16))
        assert not result.monotone

    def test_to_rows(self):
        result = sweep_mantissa_bits(synthetic_run, widths=(4, 23), error_bound=1e-3)
        rows = result.to_rows()
        assert rows[0][0] == 4 and rows[0][2] == "no"
        assert rows[1][0] == 23 and rows[1][2] == "yes"

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_mantissa_bits(synthetic_run, widths=())
        with pytest.raises(ValueError):
            sweep_mantissa_bits(synthetic_run, widths=(60,))
        with pytest.raises(ValueError):
            sweep_mantissa_bits(lambda w: float("nan"), widths=(4,))
        with pytest.raises(ValueError):
            sweep_mantissa_bits(lambda w: -1.0, widths=(4,))


class TestMinimumSafeBits:
    def test_finds_threshold(self):
        # error 2^-w; bound 1e-3 -> smallest w with 2^-w <= 1e-3 is 10
        assert minimum_safe_bits(synthetic_run, error_bound=1e-3) == 10

    def test_lo_already_safe(self):
        assert minimum_safe_bits(synthetic_run, error_bound=2.0, lo=0) == 0

    def test_unreachable_bound_raises(self):
        with pytest.raises(RuntimeError, match="unreachable"):
            minimum_safe_bits(lambda w: 1.0, error_bound=1e-6)

    def test_evaluation_budget(self):
        calls = []

        def run(w):
            calls.append(w)
            return 2.0**-w

        minimum_safe_bits(run, error_bound=1e-3)
        assert len(calls) <= 9  # 2 endpoints + ~6 bisections

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_safe_bits(synthetic_run, error_bound=-1.0)
        with pytest.raises(ValueError):
            minimum_safe_bits(synthetic_run, error_bound=1.0, lo=10, hi=5)

    def test_on_real_clamr_quantization(self):
        """End-to-end: sweep a tiny dam break's state quantization."""
        from repro.clamr import ClamrSimulation, DamBreakConfig
        from repro.clamr.kernels import FaceLists, compute_timestep, finite_diff_vectorized
        from repro.precision.emulation import truncate_mantissa

        cfg = DamBreakConfig(nx=12, ny=12, max_level=0, start_refined=False)

        def final_slice(width: int | None) -> np.ndarray:
            sim = ClamrSimulation(cfg, policy="full")
            faces = FaceLists.from_mesh(sim.mesh)
            for _ in range(40):
                dt = compute_timestep(sim.mesh, sim.state, cfg.courant)
                finite_diff_vectorized(sim.mesh, sim.state, dt, faces=faces)
                if width is not None:
                    sim.state.H[...] = truncate_mantissa(sim.state.H, width)
            field = sim.mesh.sample_to_uniform(sim.state.H.astype(np.float64))
            return field[:, field.shape[1] // 2]

        reference = final_slice(None)

        def run(width: int) -> float:
            return float(np.max(np.abs(final_slice(width) - reference)))

        result = sweep_mantissa_bits(run, widths=(8, 16, 30))
        # more bits, less error — on a real simulation
        assert result.errors[0] > result.errors[1] > result.errors[2]
