"""Property tests for stochastic rounding emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precision.emulation import truncate_mantissa
from repro.precision.stochastic import stochastic_round_float32, stochastic_truncate


class TestStochasticFloat32:
    def test_exact_values_unchanged(self):
        rng = np.random.default_rng(0)
        x = np.array([0.0, 1.0, -2.5, 1024.0])
        out = stochastic_round_float32(x, rng)
        np.testing.assert_array_equal(out, x.astype(np.float32))

    def test_result_is_enclosing_neighbor(self):
        rng = np.random.default_rng(1)
        v = np.full(1000, 1.0 + 2.0**-30)  # strictly between two float32s
        out = stochastic_round_float32(v, rng).astype(np.float64)
        lo, hi = 1.0, float(np.nextafter(np.float32(1.0), np.float32(2.0)))
        assert set(np.unique(out)) <= {lo, hi}
        assert (out == lo).any() and (out == hi).any()

    def test_unbiased_in_expectation(self):
        rng = np.random.default_rng(2)
        v = np.full(200_000, 1.0 + 0.25 * 2.0**-23)  # 25% of the way up
        out = stochastic_round_float32(v, rng).astype(np.float64)
        hi = float(np.nextafter(np.float32(1.0), np.float32(2.0)))
        frac_up = float(np.mean(out == hi))
        assert frac_up == pytest.approx(0.25, abs=0.01)
        assert float(out.mean()) == pytest.approx(1.0 + 0.25 * 2.0**-23, rel=1e-9)

    def test_nonfinite_passthrough(self):
        rng = np.random.default_rng(3)
        out = stochastic_round_float32(np.array([np.inf, -np.inf, np.nan]), rng)
        assert np.isinf(out[0]) and np.isinf(out[1]) and np.isnan(out[2])

    def test_deterministic_with_seed(self):
        x = np.random.default_rng(7).random(100) * 1e-3
        a = stochastic_round_float32(x, np.random.default_rng(42))
        b = stochastic_round_float32(x, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    @given(st.floats(min_value=-1e20, max_value=1e20, allow_nan=False), st.integers(0, 2**31))
    @settings(max_examples=150, deadline=None)
    def test_error_within_one_ulp(self, value, seed):
        rng = np.random.default_rng(seed)
        out = float(stochastic_round_float32(np.array([value]), rng)[0])
        nearest = float(np.float32(value))
        ulp = abs(float(np.nextafter(np.float32(value), np.float32(np.inf))) - nearest) + 1e-45
        assert abs(out - value) <= 2 * ulp


class TestStochasticTruncate:
    def test_representable_unchanged(self):
        rng = np.random.default_rng(0)
        x = np.array([1.0, 1.5, -2.0, 0.0])
        out = stochastic_truncate(x, 8, rng)
        np.testing.assert_array_equal(out, x)

    def test_results_bracket_value(self):
        rng = np.random.default_rng(1)
        v = np.full(1000, 1.0 + 2.0**-20)
        out = stochastic_truncate(v, 10, rng)
        down = float(truncate_mantissa(np.array([v[0]]), 10)[0])
        up = down + 2.0**-10
        assert set(np.unique(out)) <= {down, up}

    def test_unbiased_beats_truncation_in_accumulation(self):
        """The reason the hardware wants it: accumulated stochastic error
        stays near zero while round-toward-zero drifts linearly."""
        rng = np.random.default_rng(2)
        n = 50_000
        increments = np.full(n, 1.0 + 0.3 * 2.0**-8)  # not representable at 8 bits
        trunc_sum = float(truncate_mantissa(increments, 8).sum())
        stoch_sum = float(stochastic_truncate(increments, 8, rng).sum())
        exact = float(increments.sum())
        assert abs(stoch_sum - exact) < abs(trunc_sum - exact) / 10

    def test_full_width_copy(self):
        rng = np.random.default_rng(3)
        x = np.array([np.pi])
        out = stochastic_truncate(x, 52, rng)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            stochastic_truncate(np.ones(2), 53, rng)

    def test_negative_values_round_in_magnitude(self):
        rng = np.random.default_rng(4)
        v = np.full(1000, -(1.0 + 2.0**-20))
        out = stochastic_truncate(v, 10, rng)
        assert set(np.unique(out)) <= {-(1.0), -(1.0 + 2.0**-10)}

    @given(
        st.floats(min_value=-1e10, max_value=1e10, allow_nan=False),
        st.integers(0, 50),
        st.integers(0, 2**31),
    )
    @settings(max_examples=150, deadline=None)
    def test_error_bounded_by_kept_ulp(self, value, bits, seed):
        rng = np.random.default_rng(seed)
        out = float(stochastic_truncate(np.array([value]), bits, rng)[0])
        assert abs(out - value) <= abs(value) * 2.0 ** (-bits) + 1e-300
