"""Golden-fingerprint regression suite for the scenario library.

``benchmarks/baseline_ledger.jsonl`` carries one committed golden
record per registered scenario, minted at the golden scale.  These
tests pin the contract:

* every registered scenario has a committed golden;
* a fresh run reproduces the golden's ``workload_key`` (identity) and
  its ``conservation_*_hex`` digests (bitwise fidelity) — both fields
  are machine-independent, unlike the full fingerprint;
* any tamper or numerical drift fails :func:`gate_scenarios` and makes
  ``repro scenario gate`` exit nonzero.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios import (
    GOLDEN_SCALE,
    gate_scenarios,
    load_golden_records,
    record_scenario,
    scenario_names,
)

BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline_ledger.jsonl"


@pytest.fixture(scope="module")
def goldens():
    return load_golden_records(BASELINE)


class TestCommittedGoldens:
    def test_every_scenario_has_a_golden(self, goldens):
        missing = [n for n in scenario_names() if n not in goldens]
        assert not missing, f"scenarios without a committed golden: {missing}"

    def test_goldens_carry_the_gated_digests(self, goldens):
        for name, record in goldens.items():
            assert record.workload_key, name
            assert record.fidelity.get("conservation_first_hex"), name
            assert record.fidelity.get("conservation_last_hex"), name

    @pytest.mark.parametrize("name", scenario_names())
    def test_fresh_run_reproduces_the_golden(self, name, goldens):
        golden = goldens[name]
        fresh = record_scenario(name, scale=GOLDEN_SCALE)
        assert fresh.workload_key == golden.workload_key
        for key in ("conservation_first_hex", "conservation_last_hex"):
            assert fresh.fidelity[key] == golden.fidelity[key], (
                f"{name}: {key} drifted from the committed golden"
            )

    def test_lake_at_rest_golden_is_bitwise_conservative(self, goldens):
        # the well-balanced case's whole point: first == last, exactly
        g = goldens["clamr/lake-at-rest"].fidelity
        assert g["conservation_first_hex"] == g["conservation_last_hex"]


def _tampered_baseline(tmp_path, victim: str) -> Path:
    out = tmp_path / "tampered.jsonl"
    lines = []
    for line in BASELINE.read_text(encoding="utf-8").splitlines():
        doc = json.loads(line)
        if doc.get("config", {}).get("scenario") == victim:
            doc["fidelity"]["conservation_last_hex"] = "0xdeadbeefp+0"
        lines.append(json.dumps(doc, sort_keys=True))
    out.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return out


class TestGate:
    def test_gate_passes_against_committed_goldens(self):
        checks = gate_scenarios(BASELINE, names=["clamr/lake-at-rest"])
        assert checks and all(c.passed for c in checks), "\n".join(map(str, checks))

    def test_gate_fails_on_tamper(self, tmp_path):
        tampered = _tampered_baseline(tmp_path, "clamr/lake-at-rest")
        checks = gate_scenarios(tampered, names=["clamr/lake-at-rest"])
        failed = [c for c in checks if not c.passed]
        assert failed, "tampered digest slipped through the gate"
        assert any("conservation_last" in c.name for c in failed)

    def test_gate_fails_on_missing_golden(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        checks = gate_scenarios(empty, names=["clamr/dam-break"])
        assert len(checks) == 1 and not checks[0].passed
        assert "no golden record" in checks[0].evidence

    def test_cli_gate_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        name = "self/thermal-bubble"
        ok = main(["scenario", "gate", name, "--baseline", str(BASELINE)])
        assert ok == 0
        tampered = _tampered_baseline(tmp_path, name)
        bad = main(["scenario", "gate", name, "--baseline", str(tampered)])
        assert bad == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
