"""Unit tests for the shallow-water state arrays."""

import numpy as np
import pytest

from repro.clamr.state import GRAVITY, ShallowWaterState
from repro.precision.policy import FULL_PRECISION, MIN_PRECISION, MIXED_PRECISION


class TestConstruction:
    def test_zeros(self):
        s = ShallowWaterState.zeros(10, MIN_PRECISION)
        assert s.ncells == 10
        assert s.H.dtype == np.float32

    def test_dtype_follows_policy(self):
        H = np.ones(4)
        s = ShallowWaterState(H=H, U=np.zeros(4), V=np.zeros(4), policy=MIXED_PRECISION)
        assert s.state_dtype == np.float32
        assert s.compute_dtype == np.float64

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ShallowWaterState(H=np.ones(4), U=np.zeros(3), V=np.zeros(4))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            ShallowWaterState(H=np.ones((2, 2)), U=np.ones((2, 2)), V=np.ones((2, 2)))

    def test_aliased_components_are_decoupled(self):
        """Passing the same buffer for U and V must not couple them."""
        z = np.zeros(4)
        s = ShallowWaterState(H=np.ones(4), U=z, V=z, policy=FULL_PRECISION)
        s.U[0] = 5.0
        assert s.V[0] == 0.0

    def test_aliased_view_decoupled(self):
        buf = np.zeros(8)
        s = ShallowWaterState(H=np.ones(4), U=buf[:4], V=buf[4:], policy=FULL_PRECISION)
        s.U[0] = 5.0
        assert s.H[0] == 1.0


class TestPromotionStore:
    def test_promoted_gives_compute_dtype(self):
        s = ShallowWaterState.zeros(5, MIXED_PRECISION)
        H, U, V = s.promoted()
        assert H.dtype == np.float64

    def test_promoted_is_view_when_same_dtype(self):
        s = ShallowWaterState.zeros(5, FULL_PRECISION)
        H, _, _ = s.promoted()
        assert H is s.H

    def test_store_rounds_to_state_dtype(self):
        s = ShallowWaterState.zeros(1, MIXED_PRECISION)
        value = np.array([1.0 + 2**-30])  # not representable in float32
        s.store(value, value, value)
        assert s.H[0] == np.float32(1.0 + 2**-30)

    def test_store_shape_mismatch(self):
        s = ShallowWaterState.zeros(3, FULL_PRECISION)
        with pytest.raises(ValueError):
            s.store(np.zeros(4), np.zeros(4), np.zeros(4))

    def test_store_keeps_buffers(self):
        s = ShallowWaterState.zeros(3, FULL_PRECISION)
        buf = s.H
        s.store(np.ones(3), np.ones(3), np.ones(3))
        assert s.H is buf

    def test_copy_independent(self):
        s = ShallowWaterState.zeros(3, FULL_PRECISION)
        c = s.copy()
        c.H[0] = 9.0
        assert s.H[0] == 0.0

    def test_with_policy_rounds(self):
        s = ShallowWaterState(
            H=np.array([1.0 + 2**-30]), U=np.zeros(1), V=np.zeros(1), policy=FULL_PRECISION
        )
        m = s.with_policy(MIN_PRECISION)
        assert m.H.dtype == np.float32
        assert m.H[0] == np.float32(1.0 + 2**-30)


class TestConservationSums:
    def test_total_mass(self):
        s = ShallowWaterState(
            H=np.array([2.0, 3.0]), U=np.zeros(2), V=np.zeros(2), policy=FULL_PRECISION
        )
        assert s.total_mass(np.array([0.5, 0.5])) == pytest.approx(2.5)

    def test_total_mass_uses_accurate_sum(self):
        # values engineered so a naive float64 sum loses the small terms
        n = 1000
        H = np.concatenate([[1e16], np.full(n, 1.0)])
        area = np.ones(n + 1)
        s = ShallowWaterState(H=H, U=np.zeros(n + 1), V=np.zeros(n + 1), policy=FULL_PRECISION)
        assert s.total_mass(area) == pytest.approx(1e16 + n, abs=1.0)

    def test_total_momentum(self):
        s = ShallowWaterState(
            H=np.ones(2), U=np.array([1.0, 2.0]), V=np.array([-1.0, 1.0]), policy=FULL_PRECISION
        )
        px, py = s.total_momentum(np.ones(2))
        assert px == pytest.approx(3.0) and py == pytest.approx(0.0)

    def test_nbytes_scales_with_precision(self):
        full = ShallowWaterState.zeros(100, FULL_PRECISION)
        minp = ShallowWaterState.zeros(100, MIN_PRECISION)
        assert full.nbytes() == 2 * minp.nbytes()

    def test_gravity_constant(self):
        assert GRAVITY == pytest.approx(9.80)
