"""Integration tests for the SELF thermal-bubble simulation."""

import numpy as np
import pytest

from repro.precision.analysis import asymmetry_signature, difference_metrics
from repro.self_ import SelfSimulation, ThermalBubbleConfig
from repro.self_.simulation import parse_precision

SMALL = ThermalBubbleConfig(nex=3, ney=3, nez=3, order=3)


class TestParsePrecision:
    def test_paper_vocabulary(self):
        assert parse_precision("single") == np.float32
        assert parse_precision("double") == np.float64
        assert parse_precision("SP") == np.float32

    def test_dtype_passthrough(self):
        assert parse_precision(np.dtype(np.float64)) == np.float64

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_precision("quad")
        with pytest.raises(ValueError):
            parse_precision(np.dtype(np.int32))


class TestBasicRun:
    def test_runs_and_reports(self):
        res = SelfSimulation(SMALL, precision="double").run(10)
        assert res.steps == 10
        assert res.final_time > 0
        assert res.anomaly_slice.ndim == 1
        assert res.slice_precise.dtype == np.float64
        assert res.profile.flops > 0
        assert res.profile.dense_compute

    def test_bubble_rises(self):
        sim = SelfSimulation(SMALL, precision="double")
        res = sim.run(60)
        assert res.max_vertical_velocity > 0.0
        # net upward momentum in the bubble region
        w = sim.U[:, 3] / sim.U[:, 0]
        assert w.max() > abs(w.min()) * 0.5

    def test_stability(self):
        sim = SelfSimulation(SMALL, precision="double")
        sim.run(150)
        assert np.isfinite(sim.U).all()
        rho = sim.U[:, 0]
        assert rho.min() > 0.5 and rho.max() < 2.0

    def test_anomaly_scale_matches_bubble(self):
        res = SelfSimulation(SMALL, precision="double").run(20)
        # 0.5 K on 300 K at rho~1.1: anomaly ~ 0.5/300*1.1 ~ 1.8e-3
        assert 1e-4 < res.anomaly_scale < 1e-2

    def test_single_precision_state(self):
        sim = SelfSimulation(SMALL, precision="single")
        assert sim.U.dtype == np.float32
        res = sim.run(5)
        assert res.precision == "single"
        assert res.state_nbytes == sim.U.nbytes

    def test_memory_halves_at_single(self):
        a = SelfSimulation(SMALL, precision="single")
        b = SelfSimulation(SMALL, precision="double")
        assert 2 * a.U.nbytes == b.U.nbytes

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            SelfSimulation(SMALL).run(0)


class TestPrecisionComparison:
    @pytest.fixture(scope="class")
    def runs(self):
        cfg = ThermalBubbleConfig(nex=4, ney=4, nez=4, order=3)
        return {
            prec: SelfSimulation(cfg, precision=prec).run(80)
            for prec in ("single", "double")
        }

    def test_solutions_close(self, runs):
        d = difference_metrics(runs["double"].slice_precise, runs["single"].slice_precise)
        assert d.within(1.5)  # paper Fig 4: ~2 orders below the anomaly

    def test_double_asymmetry_near_zero(self, runs):
        sig = asymmetry_signature(runs["double"].slice_precise)
        assert sig.relative_max < 1e-9

    def test_single_asymmetry_larger(self, runs):
        sig_s = asymmetry_signature(runs["single"].slice_precise)
        sig_d = asymmetry_signature(runs["double"].slice_precise)
        assert sig_s.max_abs >= sig_d.max_abs

    def test_profiles_scale_with_itemsize(self, runs):
        ps, pd = runs["single"].profile, runs["double"].profile
        assert ps.state_itemsize == 4 and pd.state_itemsize == 8
        assert pd.state_bytes == 2 * ps.state_bytes
        assert ps.flops == pd.flops


class TestConfigValidation:
    def test_minimum_elements(self):
        with pytest.raises(ValueError):
            ThermalBubbleConfig(nex=1, ney=2, nez=2)

    def test_minimum_order(self):
        with pytest.raises(ValueError):
            ThermalBubbleConfig(order=1)

    def test_bubble_params(self):
        with pytest.raises(ValueError):
            ThermalBubbleConfig(bubble_amplitude=0.0)
        with pytest.raises(ValueError):
            ThermalBubbleConfig(bubble_radius=-1.0)

    def test_too_tall_domain_rejected(self):
        cfg = ThermalBubbleConfig(lengths=(1000.0, 1000.0, 40000.0))
        with pytest.raises(ValueError, match="Exner"):
            SelfSimulation(cfg)


class TestDeterminism:
    def test_identical_runs_bitwise(self):
        a = SelfSimulation(SMALL, precision="single").run(20)
        b = SelfSimulation(SMALL, precision="single").run(20)
        np.testing.assert_array_equal(a.anomaly_field, b.anomaly_field)
