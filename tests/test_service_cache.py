"""The result cache: serves only records that prove their own integrity.

One real (tiny) run provides the record; every test after that is pure
file surgery.  The contract under test: any damage — torn JSON, edited
content, transplanted filename, future schema — demotes to a miss with
a one-line warning, and never serves a wrong record.
"""

import json

import pytest

from repro.service.cache import ResultCache
from repro.service.jobs import JobSpec, execute_job


@pytest.fixture(scope="module")
def record():
    spec = JobSpec(workload="clamr", nx=12, steps=8, watch_stride=2)
    return execute_job(spec.to_dict())


def rewrite(path, mutate):
    envelope = json.loads(path.read_text(encoding="utf-8"))
    mutate(envelope)
    path.write_text(json.dumps(envelope, sort_keys=True), encoding="utf-8")


class TestRoundTrip:
    def test_put_get_identical(self, tmp_path, record):
        cache = ResultCache(tmp_path)
        cache.put(record)
        served = cache.get(record.workload_key)
        assert served is not None
        assert served.to_json() == record.to_json()  # bit-identical

    def test_missing_key_is_a_silent_miss(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 16) is None

    def test_keys_and_stats(self, tmp_path, record):
        cache = ResultCache(tmp_path)
        assert cache.keys() == [] and cache.stats()["entries"] == 0
        cache.put(record)
        assert cache.keys() == [record.workload_key]
        stats = cache.stats()
        assert stats == {"entries": 1, "valid": 1, "bytes": stats["bytes"]}
        assert stats["bytes"] > 0


class TestTamperRejection:
    def test_content_edit_rejected_by_digest(self, tmp_path, record):
        cache = ResultCache(tmp_path)
        path = cache.put(record)
        # valid JSON, plausible edit, stale digest — must not be served
        rewrite(path, lambda env: env["record"].__setitem__("wall_s", 1e9))
        with pytest.warns(RuntimeWarning, match="digest mismatch"):
            assert cache.get(record.workload_key) is None

    def test_transplanted_filename_rejected(self, tmp_path, record):
        cache = ResultCache(tmp_path)
        path = cache.put(record)
        other = "f" * 16
        path.rename(cache.path_for(other))
        with pytest.warns(RuntimeWarning, match="workload key mismatch"):
            assert cache.get(other) is None

    def test_consistent_identity_edit_rejected_by_fingerprint(self, tmp_path, record):
        cache = ResultCache(tmp_path)
        path = cache.put(record)

        def forge(env):
            # an attacker editing an identity field *and* refreshing the
            # digest: only the recomputed fingerprint can catch this
            env["record"]["git_sha"] = "f" * 12
            import hashlib

            canonical = json.dumps(
                env["record"], sort_keys=True, separators=(",", ":")
            ).encode()
            env["digest"] = hashlib.sha256(canonical).hexdigest()

        rewrite(path, forge)
        with pytest.warns(RuntimeWarning, match="fingerprint mismatch"):
            assert cache.get(record.workload_key) is None

    def test_garbage_bytes_rejected(self, tmp_path, record):
        cache = ResultCache(tmp_path)
        path = cache.put(record)
        path.write_text('{"schema": 1, "work', encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="unreadable JSON"):
            assert cache.get(record.workload_key) is None

    def test_future_schema_rejected(self, tmp_path, record):
        cache = ResultCache(tmp_path)
        path = cache.put(record)
        rewrite(path, lambda env: env.__setitem__("schema", 99))
        with pytest.warns(RuntimeWarning, match="unsupported cache schema"):
            assert cache.get(record.workload_key) is None

    def test_overwrite_heals_damage(self, tmp_path, record):
        cache = ResultCache(tmp_path)
        path = cache.put(record)
        path.write_text("garbage", encoding="utf-8")
        cache.put(record)  # recompute-and-overwrite is the repair path
        assert cache.get(record.workload_key) is not None
