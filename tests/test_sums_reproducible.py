"""Property tests for the binned reproducible sum."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sums import BinnedAccumulator, reproducible_sum

values_strategy = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e30, max_value=1e30),
    min_size=0,
    max_size=120,
)


class TestReproducibility:
    @given(values_strategy, st.randoms(use_true_random=False))
    @settings(max_examples=150, deadline=None)
    def test_order_independence_bitwise(self, values, rnd):
        shuffled = list(values)
        rnd.shuffle(shuffled)
        a = reproducible_sum(np.array(values, dtype=np.float64))
        b = reproducible_sum(np.array(shuffled, dtype=np.float64))
        assert a == b or (math.isnan(a) and math.isnan(b))

    @given(values_strategy, st.integers(0, 120))
    @settings(max_examples=150, deadline=None)
    def test_partition_merge_bitwise(self, values, cut):
        cut = min(cut, len(values))
        whole = BinnedAccumulator()
        whole.add_array(np.array(values, dtype=np.float64))
        left = BinnedAccumulator()
        left.add_array(np.array(values[:cut], dtype=np.float64))
        right = BinnedAccumulator()
        right.add_array(np.array(values[cut:], dtype=np.float64))
        left.merge(right)
        assert left.value() == whole.value()
        assert left.count == whole.count == len(values)

    def test_mpi_style_three_way_merge(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=999) * 1e8
        ranks = [BinnedAccumulator() for _ in range(3)]
        for i, acc in enumerate(ranks):
            acc.add_array(x[i::3])
        ranks[0].merge(ranks[1])
        ranks[0].merge(ranks[2])
        assert ranks[0].value() == reproducible_sum(x)


class TestAccuracy:
    @given(values_strategy)
    @settings(max_examples=150, deadline=None)
    def test_matches_fsum_to_one_ulp(self, values):
        result = reproducible_sum(np.array(values, dtype=np.float64))
        exact = math.fsum(values)
        if exact == 0.0:
            assert abs(result) <= 1e-290
        else:
            assert result == pytest.approx(exact, rel=4 * np.finfo(np.float64).eps, abs=1e-290)

    def test_catastrophic_cancellation(self):
        x = np.array([1e20, 3.0, -1e20, 4.0])
        assert reproducible_sum(x) == 7.0

    def test_many_tiny_on_large(self):
        x = np.concatenate([[1e16], np.full(10000, 1.0)])
        assert reproducible_sum(x) == math.fsum(x.tolist())

    def test_subnormals(self):
        tiny = np.full(100, 5e-324)
        assert reproducible_sum(tiny) == math.fsum(tiny.tolist())


class TestValidation:
    def test_rejects_nan(self):
        acc = BinnedAccumulator()
        with pytest.raises(ValueError):
            acc.add(float("nan"))

    def test_rejects_inf(self):
        acc = BinnedAccumulator()
        with pytest.raises(ValueError):
            acc.add(float("inf"))

    def test_zero_counts(self):
        acc = BinnedAccumulator()
        acc.add(0.0)
        assert acc.count == 1
        assert acc.value() == 0.0

    def test_renormalization_survives_many_adds(self):
        acc = BinnedAccumulator()
        for _ in range(20000):
            acc.add(1.0 + 2**-40)
        expected = math.fsum([1.0 + 2**-40] * 20000)
        assert acc.value() == pytest.approx(expected, rel=1e-15)
