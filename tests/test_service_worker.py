"""The worker loop, in-process: compute, cache-serve, retry, give up.

These tests run real (tiny) workloads through ``run_worker`` in drain
mode — the same code path ``repro serve`` and ``repro queue drain``
execute — and assert the ledger/cache/queue bookkeeping that the chaos
harness later stresses under fire.
"""

import pytest

from repro.ledger import Ledger
from repro.service.cache import ResultCache
from repro.service.jobs import JobSpec
from repro.service.queue import JobQueue
from repro.service.retry import RetryPolicy
from repro.service.worker import WorkerOptions, run_worker


def tiny_spec(**overrides) -> JobSpec:
    kwargs = {"workload": "clamr", "nx": 12, "steps": 8, "watch_stride": 2}
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def drain_options(tmp_path, **overrides) -> WorkerOptions:
    kwargs = {
        "queue": tmp_path / "queue",
        "ledger": tmp_path / "ledger",
        "retry": RetryPolicy(max_attempts=2, base_delay_s=0.01, max_delay_s=0.05),
        "poll_s": 0.02,
        "drain": True,
    }
    kwargs.update(overrides)
    return WorkerOptions(**kwargs)


class TestDrain:
    def test_computes_then_serves_duplicates_from_cache(self, tmp_path):
        opts = drain_options(tmp_path)
        queue = JobQueue(opts.queue)
        queue.submit(tiny_spec(policy="mixed"))
        queue.submit(tiny_spec(policy="full"))
        queue.submit(tiny_spec(policy="mixed"))  # duplicate of the first

        report = run_worker(opts)
        assert report.completed == 3
        assert report.computed == 2
        assert report.cache_hits == 1
        assert report.failed == 0 and report.lost == 0

        # exactly one ledger record per unique key, under the file lock
        records = Ledger(opts.ledger).load().records()
        assert len(records) == 2
        assert len({r.workload_key for r in records}) == 2

        # the cache-served duplicate carries the computed twin's identity
        done = queue.jobs("done")
        by_cached = {}
        for job in done:
            by_cached.setdefault(job.doc["result"]["cached"], []).append(job)
        [dup] = by_cached[True]
        twin = next(
            j for j in by_cached[False] if j.workload_key == dup.workload_key
        )
        assert dup.doc["result"]["fingerprint"] == twin.doc["result"]["fingerprint"]

    def test_cached_record_is_bit_identical_to_computation(self, tmp_path):
        opts = drain_options(tmp_path)
        queue = JobQueue(opts.queue)
        spec = tiny_spec()
        queue.submit(spec)
        run_worker(opts)
        [ledger_record] = Ledger(opts.ledger).load().records()
        cached = ResultCache(opts.cache_dir()).get(spec.workload_key())
        assert cached is not None
        assert cached.to_json() == ledger_record.to_json()

    def test_empty_queue_drains_immediately(self, tmp_path):
        report = run_worker(drain_options(tmp_path))
        assert report.completed == 0
        assert report.wall_s < 30.0


class TestFailureHandling:
    def test_failing_job_retries_then_parks_in_failed(self, tmp_path, monkeypatch):
        def explode(spec_doc):
            raise RuntimeError("synthetic workload failure")

        monkeypatch.setattr("repro.service.worker.execute_job", explode)
        opts = drain_options(tmp_path)
        queue = JobQueue(opts.queue)
        queue.submit(tiny_spec())

        report = run_worker(opts)
        assert report.retried == 1  # attempt 1 re-queued with backoff
        assert report.failed == 1  # attempt 2 exhausted the policy
        assert report.completed == 0

        [parked] = queue.jobs("failed")
        assert parked.attempts == 2
        assert "synthetic workload failure" in parked.doc["error"]
        assert queue.active_count() == 0
        # nothing poisonous reached the ledger or cache
        assert len(Ledger(opts.ledger).load()) == 0
        assert ResultCache(opts.cache_dir()).keys() == []

    def test_failed_jobs_leave_queue_not_clean(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.service.worker.execute_job",
            lambda spec_doc: (_ for _ in ()).throw(RuntimeError("nope")),
        )
        opts = drain_options(tmp_path, retry=RetryPolicy(max_attempts=1))
        JobQueue(opts.queue).submit(tiny_spec())
        report = run_worker(opts)
        assert report.failed == 1 and report.retried == 0


class TestIdleStop:
    def test_should_stop_wins_over_pending_work(self, tmp_path):
        opts = drain_options(tmp_path, drain=False)
        JobQueue(opts.queue).submit(tiny_spec())
        report = run_worker(opts, should_stop=lambda: True)
        assert report.completed == 0  # stopped before claiming anything

    def test_idle_timeout_stops_a_non_drain_worker(self, tmp_path):
        opts = drain_options(tmp_path, drain=False, idle_timeout_s=0.05)
        report = run_worker(opts)
        assert report.completed == 0


@pytest.mark.parametrize("explicit_cache", [False, True])
def test_cache_dir_defaults_next_to_queue(tmp_path, explicit_cache):
    cache = tmp_path / "elsewhere" if explicit_cache else None
    opts = WorkerOptions(queue=tmp_path / "q", cache=cache)
    expected = cache if explicit_cache else tmp_path / "q" / ".cache"
    assert opts.cache_dir() == expected
