"""Property-based validation of the scenario library.

Every registered scenario — present and future — is pulled through the
same property gauntlet by parameterizing over the registry itself:
initial conditions must be finite and physical, declared symmetries
must hold, the step-0 conservation budget must be honest, and the
precision ladder must place state dtypes monotonically (min ⊑ mixed ⊑
full).  The lake-at-rest case gets the strictest treatment: the
well-balanced bathymetry source term must preserve the rest state to
the *bit*, across both flux schemes and every precision policy.
"""

import numpy as np
import pytest

from repro.scenarios import (
    Scenario,
    all_scenarios,
    build_simulation,
    get_scenario,
    register_scenario,
    scenario_names,
    validate_scenario,
)
from repro.scenarios.checks import mirror_asymmetry, rot90_asymmetry, ulp_distance

CLAMR_POLICIES = ("min", "mixed", "full")


def _names(family=None):
    names = scenario_names()
    if family:
        names = [n for n in names if n.startswith(family + "/")]
    return names


class TestRegistry:
    def test_minimum_library_size(self):
        assert len(_names("clamr")) >= 5
        assert len(_names("self")) >= 3
        assert len(scenario_names()) >= 8

    def test_names_are_family_prefixed_and_sorted(self):
        names = scenario_names()
        assert all(n.split("/")[0] in ("clamr", "self") for n in names)
        clamr = [n for n in names if n.startswith("clamr/")]
        assert names[: len(clamr)] == sorted(clamr), "clamr scenarios lead"

    def test_unknown_scenario_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("clamr/no-such-case")

    def test_duplicate_registration_rejected(self):
        existing = get_scenario("clamr/dam-break")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(existing)

    def test_unpicklable_hook_rejected(self):
        sc = Scenario(
            name="clamr/bad-hook",
            family="clamr",
            description="lambda hooks cannot cross process boundaries",
            ic=lambda cfg, x, y: None,
            scales={"quick": {"nx": 8, "steps": 4}, "bench": {"nx": 8, "steps": 4}},
        )
        with pytest.raises(ValueError, match="picklable"):
            register_scenario(sc)

    @pytest.mark.parametrize("name", scenario_names())
    def test_both_scales_resolve(self, name):
        sc = get_scenario(name)
        for scale in ("quick", "bench"):
            size = sc.scale(scale)
            assert size["steps"] >= 1
        with pytest.raises(ValueError, match="no scale"):
            sc.scale("huge")


class TestInitialConditions:
    @pytest.mark.parametrize("name", _names("clamr"))
    def test_clamr_ic_finite_and_positive(self, name):
        sim, _cfg, _steps, _policy = build_simulation(name, scale="quick")
        s = sim.state
        for arr in (s.H, s.U, s.V):
            assert np.isfinite(np.asarray(arr, dtype=np.float64)).all()
        assert (np.asarray(s.H, dtype=np.float64) > 0).all(), "dry cells in IC"

    @pytest.mark.parametrize("name", _names("self"))
    def test_self_ic_finite_and_physical(self, name):
        sim, _cfg, _steps, _policy = build_simulation(name, scale="quick")
        U = np.asarray(sim.U, dtype=np.float64)
        assert np.isfinite(U).all()
        assert (U[:, 0] > 0).all(), "non-positive density in IC"
        assert (U[:, 4] > 0).all(), "non-positive total energy in IC"

    @pytest.mark.parametrize("name", _names("clamr"))
    def test_clamr_ic_starts_at_rest(self, name):
        # every registered clamr case releases from rest: momenta exactly 0
        sim, _cfg, _steps, _policy = build_simulation(name, scale="quick")
        assert not np.asarray(sim.state.U, dtype=np.float64).any()
        assert not np.asarray(sim.state.V, dtype=np.float64).any()

    @pytest.mark.parametrize(
        "name", [n for n in _names("clamr") if get_scenario(n).symmetry]
    )
    def test_declared_symmetry_holds_in_the_ic(self, name):
        sim, _cfg, _steps, _policy = build_simulation(name, scale="quick")
        field = sim.mesh.sample_to_uniform(
            np.asarray(sim.state.H, dtype=np.float64)
        )
        # the uniform sample indexes [row, col] with y on axis 0
        sym = get_scenario(name).symmetry
        if sym == "rot90":
            asym = rot90_asymmetry(field)
        elif sym == "mirror-y":
            asym = mirror_asymmetry(field, axis=0)
        else:  # pragma: no cover - future symmetries
            pytest.fail(f"unknown declared symmetry {sym!r}")
        assert asym == 0.0, f"{name} IC breaks its declared {sym} symmetry"


class TestConservationBudget:
    @pytest.mark.parametrize("name", _names("clamr"))
    def test_step0_total_mass_is_finite_positive(self, name):
        sim, _cfg, _steps, _policy = build_simulation(name, scale="quick")
        mass = sim.state.total_mass(sim.mesh.cell_area())
        assert np.isfinite(mass) and mass > 0

    @pytest.mark.parametrize("name", scenario_names())
    def test_acceptance_contract_passes_at_quick_scale(self, name):
        _run, checks = validate_scenario(name, scale="quick")
        assert checks, f"{name} registered no acceptance checks"
        failed = [c for c in checks if not c.passed]
        assert not failed, "\n".join(str(c) for c in failed)


class TestPrecisionPlacement:
    @pytest.mark.parametrize("name", _names("clamr"))
    def test_state_dtype_monotone_min_mixed_full(self, name):
        sizes = []
        for policy in CLAMR_POLICIES:
            sim, _cfg, _steps, _policy = build_simulation(
                name, scale="quick", policy=policy
            )
            sizes.append(sim.state.state_dtype.itemsize)
        assert sizes == sorted(sizes), (
            f"{name}: state dtypes not monotone over {CLAMR_POLICIES}: {sizes}"
        )
        assert sizes[0] < sizes[-1], "min and full collapse to one dtype"


class TestLakeAtRestWellBalance:
    """The tentpole claim: variable bathymetry preserves the rest state
    to the bit — zero ULPs of drift in H, U, V — at every precision."""

    @pytest.mark.parametrize("policy", ("half", "min", "mixed", "full"))
    @pytest.mark.parametrize("scheme", ("rusanov", "muscl"))
    def test_bitwise_preservation(self, policy, scheme):
        from dataclasses import replace

        sc = get_scenario("clamr/lake-at-rest")
        sc = replace(sc, scheme=scheme)
        sim, _cfg, steps, _policy = build_simulation(sc, scale="quick", policy=policy)
        h0 = np.array(sim.state.H, copy=True)
        sim.run(steps)
        assert ulp_distance(sim.state.H, h0).max() == 0.0
        assert not np.asarray(sim.state.U).any()
        assert not np.asarray(sim.state.V).any()

    def test_scalar_kernel_also_well_balanced(self):
        sim, _cfg, steps, _policy = build_simulation(
            "clamr/lake-at-rest", scale="quick", policy="mixed", vectorized=False
        )
        h0 = np.array(sim.state.H, copy=True)
        sim.run(steps)
        assert ulp_distance(sim.state.H, h0).max() == 0.0

    def test_flat_bottom_runs_bit_unchanged_by_the_bathy_code(self):
        # bathymetry=None must leave the seed dam break untouched: the
        # source-term path only activates when a bottom is supplied
        from repro.clamr import ClamrSimulation, DamBreakConfig

        cfg = DamBreakConfig(nx=12, ny=12, max_level=1)
        a = ClamrSimulation(cfg, policy="mixed")
        b = ClamrSimulation(cfg, policy="mixed", bathymetry=None)
        a.run(8)
        b.run(8)
        assert np.array_equal(a.state.H, b.state.H)
        assert np.array_equal(a.state.U, b.state.U)
