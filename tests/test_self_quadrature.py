"""Unit + property tests for Legendre polynomials and quadrature."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.self_.quadrature import (
    gauss_legendre,
    gauss_lobatto,
    legendre,
    legendre_and_derivative,
)


class TestLegendre:
    def test_first_few_polynomials(self):
        x = np.linspace(-1, 1, 7)
        np.testing.assert_allclose(legendre(0, x), np.ones_like(x))
        np.testing.assert_allclose(legendre(1, x), x)
        np.testing.assert_allclose(legendre(2, x), 0.5 * (3 * x**2 - 1), atol=1e-15)
        np.testing.assert_allclose(legendre(3, x), 0.5 * (5 * x**3 - 3 * x), atol=1e-15)

    def test_endpoint_values(self):
        for n in range(8):
            assert legendre(n, np.array([1.0]))[0] == pytest.approx(1.0)
            assert legendre(n, np.array([-1.0]))[0] == pytest.approx((-1.0) ** n)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            legendre(-1, np.zeros(2))

    @given(st.integers(1, 12), st.floats(-1.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_derivative_matches_finite_difference(self, n, x):
        x = min(max(x, -0.999), 0.999)
        _, dp = legendre_and_derivative(n, np.array([x]))
        h = 1e-7
        fd = (legendre(n, np.array([x + h]))[0] - legendre(n, np.array([x - h]))[0]) / (2 * h)
        assert dp[0] == pytest.approx(fd, rel=1e-5, abs=1e-5)

    def test_derivative_at_endpoints(self):
        for n in range(1, 8):
            _, dp = legendre_and_derivative(n, np.array([1.0, -1.0]))
            expected = n * (n + 1) / 2.0
            assert dp[0] == pytest.approx(expected)
            assert dp[1] == pytest.approx(expected * (-1.0) ** (n - 1))


class TestGaussLegendre:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16, 32])
    def test_matches_numpy(self, n):
        x, w = gauss_legendre(n)
        xr, wr = np.polynomial.legendre.leggauss(n)
        np.testing.assert_allclose(x, xr, atol=1e-13)
        np.testing.assert_allclose(w, wr, atol=1e-13)

    def test_weights_sum_to_two(self):
        for n in (1, 4, 9, 20):
            _, w = gauss_legendre(n)
            assert w.sum() == pytest.approx(2.0)

    @given(st.integers(1, 16), st.integers(0, 31))
    @settings(max_examples=100, deadline=None)
    def test_polynomial_exactness(self, n, degree):
        """n-point Gauss is exact for degree <= 2n-1."""
        if degree > 2 * n - 1:
            return
        x, w = gauss_legendre(n)
        numeric = float(np.sum(w * x**degree))
        exact = 0.0 if degree % 2 else 2.0 / (degree + 1)
        assert numeric == pytest.approx(exact, abs=1e-12)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            gauss_legendre(0)


class TestGaussLobatto:
    def test_includes_endpoints(self):
        for n in (2, 3, 5, 9):
            x, _ = gauss_lobatto(n)
            assert x[0] == -1.0 and x[-1] == 1.0

    def test_known_gll4(self):
        x, w = gauss_lobatto(4)
        np.testing.assert_allclose(x, [-1.0, -np.sqrt(1 / 5), np.sqrt(1 / 5), 1.0], atol=1e-14)
        np.testing.assert_allclose(w, [1 / 6, 5 / 6, 5 / 6, 1 / 6], atol=1e-14)

    def test_weights_sum_to_two(self):
        for n in (2, 5, 8, 12):
            _, w = gauss_lobatto(n)
            assert w.sum() == pytest.approx(2.0)

    @given(st.integers(2, 12), st.integers(0, 21))
    @settings(max_examples=100, deadline=None)
    def test_polynomial_exactness(self, n, degree):
        """n-point GLL is exact for degree <= 2n-3."""
        if degree > 2 * n - 3:
            return
        x, w = gauss_lobatto(n)
        numeric = float(np.sum(w * x**degree))
        exact = 0.0 if degree % 2 else 2.0 / (degree + 1)
        assert numeric == pytest.approx(exact, abs=1e-12)

    def test_nodes_sorted_and_symmetric(self):
        x, w = gauss_lobatto(9)
        assert (np.diff(x) > 0).all()
        np.testing.assert_allclose(x, -x[::-1], atol=1e-14)
        np.testing.assert_allclose(w, w[::-1], atol=1e-14)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            gauss_lobatto(1)
