"""The process-parallel sweep executor: determinism is the contract.

A parallel sweep must be a *pure accelerator*: same results, same order,
same ledger records (minus wall-clock fields), same telemetry files as
the serial run.  These tests pin that contract for the executor itself
and for each wired consumer (harness sweeps, resilience campaign,
tradespace enumeration), plus the CLI's --jobs argument hygiene.
"""

import dataclasses
import json
import time
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.machine.counters import WorkloadProfile
from repro.parallel.executor import (
    SweepExecutor,
    SweepTask,
    SweepWorkerError,
    TelemetrySpec,
    TracedResult,
    derive_seed,
    merge_staged,
    resolve_jobs,
    staged_dir,
)

#: run-record fields that legitimately differ between serial and
#: parallel executions of the same workload
TIMING_FIELDS = {"wall_s", "kernel_s", "created_unix"}


def normalized(record: dict) -> dict:
    """A ledger record minus its wall-clock timing fields."""
    out = {k: v for k, v in record.items() if k not in TIMING_FIELDS}
    out["kernels"] = {
        name: {k: v for k, v in summary.items() if k not in ("total_s", "mean_ms")}
        for name, summary in record.get("kernels", {}).items()
    }
    return out


def read_records(path) -> list[dict]:
    return [json.loads(line) for line in Path(path).read_text().splitlines() if line.strip()]


def _square(x):
    return x * x


def _slow_inverse(i, n):
    # later tasks finish first: completion order is the reverse of
    # submission order, so any ordering bug would show
    time.sleep(0.01 * (n - i))
    return i


def _boom(i):
    if i == 2:
        raise RuntimeError("task 2 exploded")
    return i


class TestExecutor:
    def test_inline_matches_pool(self):
        tasks = [SweepTask(name=f"t{i}", fn=_square, args=(i,)) for i in range(9)]
        assert SweepExecutor(1).map(tasks) == SweepExecutor(4).map(tasks)

    def test_results_in_submission_order(self):
        n = 6
        tasks = [SweepTask(name=f"t{i}", fn=_slow_inverse, args=(i, n)) for i in range(n)]
        assert SweepExecutor(n).map(tasks) == list(range(n))

    def test_stream_pairs_tasks_with_results(self):
        tasks = [SweepTask(name=f"t{i}", fn=_square, args=(i,)) for i in range(4)]
        for jobs in (1, 2):
            for task, result in SweepExecutor(jobs).stream(tasks):
                assert result == task.args[0] ** 2

    def test_worker_exception_propagates(self):
        tasks = [SweepTask(name=f"t{i}", fn=_boom, args=(i,)) for i in range(4)]
        for jobs in (1, 3):
            with pytest.raises(RuntimeError, match="task 2 exploded"):
                SweepExecutor(jobs).map(tasks)

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(0)
        with pytest.raises(ValueError):
            SweepExecutor(-2)

    def test_empty_task_list(self):
        assert SweepExecutor(4).map([]) == []


class TestResolveJobs:
    def test_clamps_silently_to_sweep_size(self):
        assert resolve_jobs(16, 3) == 3
        assert resolve_jobs(2, 3) == 2

    def test_rejects_nonpositive(self):
        for bad in (0, -1, -99):
            with pytest.raises(ValueError):
                resolve_jobs(bad, 10)


class TestDeriveSeed:
    def test_matches_campaign_formula(self):
        # the historical inline formula the campaign used; parallel runs
        # must reproduce it exactly or re-runs replay different faults
        for seed, coords in [(0, ("H", "nan", "min", 1)), (42, ("U", "bitflip", "full", 0))]:
            text = "/".join(str(p) for p in (seed, *coords))
            assert derive_seed(seed, *coords) == zlib.crc32(text.encode()) & 0x7FFFFFFF

    def test_stable_and_distinct(self):
        a = derive_seed(7, "x", 1)
        assert a == derive_seed(7, "x", 1)
        assert a != derive_seed(7, "x", 2)
        assert 0 <= a <= 0x7FFFFFFF


class TestStaging:
    def test_merge_preserves_task_order(self, tmp_path):
        s0 = staged_dir(tmp_path, 0, "first")
        s1 = staged_dir(tmp_path, 1, "second/nested")
        (s0 / "shared.json").write_text("from-0")
        (s1 / "shared.json").write_text("from-1")
        (s0 / "only0.jsonl").write_text("zero")
        moved = merge_staged(tmp_path)
        assert moved == 3
        # last writer (higher task index) wins, like a serial sweep
        assert (tmp_path / "shared.json").read_text() == "from-1"
        assert (tmp_path / "only0.jsonl").read_text() == "zero"
        assert not list(tmp_path.glob(".stage-*"))

    def test_merge_empty_base(self, tmp_path):
        assert merge_staged(tmp_path) == 0


def _traced_clamr(cfg, steps, telemetry=None):
    from repro.clamr import ClamrSimulation

    result = ClamrSimulation(cfg, policy="mixed", telemetry=telemetry).run(steps)
    return result.mass_drift


def _strip_clock(trace: dict) -> dict:
    """A merged Chrome trace minus its wall-clock fields (ts/dur).

    pid/tid/name/args and event order are submission-order-deterministic;
    only the timestamps depend on which worker ran when.
    """
    events = []
    for e in trace["traceEvents"]:
        events.append({k: v for k, v in e.items() if k not in ("ts", "dur")})
    return {**trace, "traceEvents": events}


class TestTracedTasks:
    def _tasks(self):
        from repro.clamr import DamBreakConfig

        cfg = DamBreakConfig(nx=10, ny=10, max_level=1)
        return [
            SweepTask(
                name=f"t{i}",
                fn=_traced_clamr,
                args=(cfg, 6),
                telemetry=TelemetrySpec(label=f"lane/{i}", flight_stride=2),
            )
            for i in range(3)
        ]

    def test_workers_ship_bundles(self):
        for jobs in (1, 3):
            results = SweepExecutor(jobs).map(self._tasks())
            assert all(isinstance(r, TracedResult) for r in results)
            for i, r in enumerate(results):
                assert r.bundle.label == f"lane/{i}"
                assert r.bundle.spans, "worker spans must come home"
                assert r.bundle.flight is not None and r.bundle.flight.nsamples == 3

    def test_parallel_bundles_match_serial(self):
        from repro.telemetry.flight import flight_digest

        serial = SweepExecutor(1).map(self._tasks())
        parallel = SweepExecutor(3).map(self._tasks())
        for a, b in zip(serial, parallel):
            assert a.value == b.value
            assert [s.name for s in a.bundle.spans] == [s.name for s in b.bundle.spans]
            assert a.bundle.metrics == b.bundle.metrics
            assert flight_digest(a.bundle.flight) == flight_digest(b.bundle.flight)

    def test_merged_trace_serial_equals_parallel_modulo_clock(self):
        from repro.telemetry.bundle import merged_chrome_trace

        serial = merged_chrome_trace([r.bundle for r in SweepExecutor(1).map(self._tasks())])
        parallel = merged_chrome_trace([r.bundle for r in SweepExecutor(3).map(self._tasks())])
        assert _strip_clock(serial) == _strip_clock(parallel)

    def test_merged_trace_lanes_are_submission_ordered(self, tmp_path):
        from repro.telemetry.bundle import write_merged_chrome_trace

        bundles = [r.bundle for r in SweepExecutor(2).map(self._tasks())]
        path = write_merged_chrome_trace(bundles, tmp_path / "m.trace.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        names = {e["pid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {1: "lane/0", 2: "lane/1", 3: "lane/2"}
        # every lane carries spans, and lane blocks appear in pid order
        span_pids = [e["pid"] for e in events if e["ph"] == "X"]
        assert sorted(set(span_pids)) == [1, 2, 3]
        assert span_pids == sorted(span_pids)
        assert doc["otherData"]["workers"] == ["lane/0", "lane/1", "lane/2"]

    def test_untraced_task_unchanged(self):
        task = SweepTask(name="plain", fn=_square, args=(3,))
        assert task.run() == 9


class TestHarnessSweeps:
    def test_clamr_levels_parallel_parity(self, tmp_path):
        from repro.harness.experiments import run_clamr_levels

        serial = run_clamr_levels(
            nx=12, steps=12, max_level=1,
            ledger=tmp_path / "serial.jsonl", telemetry_dir=tmp_path / "tel_s",
        )
        parallel = run_clamr_levels(
            nx=12, steps=12, max_level=1,
            ledger=tmp_path / "par.jsonl", telemetry_dir=tmp_path / "tel_p",
            jobs=3,
        )
        assert list(serial) == list(parallel)
        for level in serial:
            assert serial[level].mass_drift == parallel[level].mass_drift
            assert np.array_equal(serial[level].slice_precise, parallel[level].slice_precise)
        a = read_records(tmp_path / "serial.jsonl")
        b = read_records(tmp_path / "par.jsonl")
        assert [r["fingerprint"] for r in a] == [r["fingerprint"] for r in b]
        assert [normalized(r) for r in a] == [normalized(r) for r in b]
        # telemetry trees identical, staging dirs cleaned up
        names_s = sorted(p.name for p in (tmp_path / "tel_s").iterdir())
        names_p = sorted(p.name for p in (tmp_path / "tel_p").iterdir())
        assert names_s == names_p
        assert not [n for n in names_p if n.startswith(".stage-")]

    def test_self_precisions_parallel_parity(self, tmp_path):
        from repro.harness.experiments import run_self_precisions

        serial = run_self_precisions(elems=2, order=2, steps=8, ledger=tmp_path / "s.jsonl")
        parallel = run_self_precisions(
            elems=2, order=2, steps=8, ledger=tmp_path / "p.jsonl", jobs=2
        )
        for prec in serial:
            assert serial[prec].max_vertical_velocity == parallel[prec].max_vertical_velocity
        a = read_records(tmp_path / "s.jsonl")
        b = read_records(tmp_path / "p.jsonl")
        assert [normalized(r) for r in a] == [normalized(r) for r in b]

    def test_jobs_zero_raises(self):
        from repro.harness.experiments import run_clamr_levels

        with pytest.raises(ValueError):
            run_clamr_levels(nx=8, steps=2, jobs=0)

    def test_flight_digests_identical_across_jobs(self, tmp_path):
        from repro.harness.experiments import run_clamr_levels

        run_clamr_levels(
            nx=12, steps=12, max_level=1, ledger=tmp_path / "s.jsonl",
            flight_stride=2,
        )
        run_clamr_levels(
            nx=12, steps=12, max_level=1, ledger=tmp_path / "p.jsonl",
            flight_stride=2, jobs=3,
        )
        a = read_records(tmp_path / "s.jsonl")
        b = read_records(tmp_path / "p.jsonl")
        assert [normalized(r) for r in a] == [normalized(r) for r in b]
        for r in a:
            assert r["fidelity"]["flight"]["hash"]
            assert r["config"]["run"]["flight"] == {"stride": 2, "capacity": 512}

    def test_sweep_trace_out_merges_every_lane(self, tmp_path):
        from repro.harness.experiments import run_clamr_levels

        out_s = tmp_path / "serial.trace.json"
        out_p = tmp_path / "par.trace.json"
        run_clamr_levels(nx=12, steps=8, max_level=1, trace_out=out_s)
        run_clamr_levels(nx=12, steps=8, max_level=1, trace_out=out_p, jobs=2)
        serial = json.loads(out_s.read_text())
        parallel = json.loads(out_p.read_text())
        assert _strip_clock(serial) == _strip_clock(parallel)
        pids = {e["pid"] for e in parallel["traceEvents"] if e["ph"] == "X"}
        assert pids == {1, 2, 3}  # one lane per precision level


class TestCampaignParallel:
    def _config(self):
        from repro.resilience import CampaignConfig

        return CampaignConfig(
            workload="clamr", steps=10, nx=8, max_level=1,
            kinds=("nan", "bitflip"), levels=("min",), trials=1,
        )

    def test_outcomes_and_records_match_serial(self, tmp_path):
        from repro.ledger import Ledger
        from repro.resilience import run_campaign

        cfg = self._config()
        serial = run_campaign(cfg, ledger=Ledger(tmp_path / "s.jsonl"))
        parallel = run_campaign(cfg, ledger=Ledger(tmp_path / "p.jsonl"), jobs=2)
        assert len(serial.cells) == len(parallel.cells)
        for a, b in zip(serial.cells, parallel.cells):
            assert dataclasses.replace(a, wall_s=0.0) == dataclasses.replace(b, wall_s=0.0)
        ra = read_records(tmp_path / "s.jsonl")
        rb = read_records(tmp_path / "p.jsonl")
        assert [normalized(r) for r in ra] == [normalized(r) for r in rb]

    def test_progress_called_in_sweep_order(self):
        from repro.resilience import run_campaign

        seen = []
        run_campaign(self._config(), progress=lambda c: seen.append((c.array, c.kind)), jobs=2)
        serial_seen = []
        run_campaign(self._config(), progress=lambda c: serial_seen.append((c.array, c.kind)))
        assert seen == serial_seen

    def test_campaign_trace_out_has_one_lane_per_cell(self, tmp_path):
        from repro.resilience import run_campaign

        out = tmp_path / "campaign.trace.json"
        result = run_campaign(self._config(), jobs=2, trace_out=out)
        doc = json.loads(out.read_text())
        labels = doc["otherData"]["workers"]
        assert len(labels) == len(result.cells)
        assert all(label.startswith("resilience/clamr/") for label in labels)


class TestTradespaceParallel:
    def _space(self):
        from repro.tradespace import TradeSpace

        profile = WorkloadProfile(
            name="t", flops=5 * 10**11, state_bytes=10**11,
            state_itemsize=4, compute_itemsize=8, resident_state_bytes=10**8,
        )
        return TradeSpace({"mixed": profile}, devices=("haswell", "titanx"),
                          resolutions=(0.5, 1.0, 2.0))

    def test_enumerate_parallel_parity(self):
        space = self._space()
        assert space.enumerate() == space.enumerate(jobs=3)

    def test_enumerate_jobs_zero_raises(self):
        with pytest.raises(ValueError):
            self._space().enumerate(jobs=0)


class TestCliJobsHygiene:
    def test_jobs_zero_exits_2_one_line(self, capsys):
        from repro.cli import main

        code = main(["table", "1", "--jobs", "0"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.strip().startswith("repro: error:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_campaign_jobs_negative_exits_2(self, capsys):
        from repro.cli import main

        code = main([
            "resilience", "campaign", "clamr", "--steps", "4", "--nx", "8",
            "--levels", "min", "--kinds", "nan", "--jobs", "-3",
        ])
        assert code == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_jobs_above_sweep_size_clamps_silently(self, capsys):
        from repro.cli import main

        # 3 precision levels, --jobs 99: clamps, runs, exits 0
        code = main(["table", "1", "--jobs", "99"])
        assert code == 0


def _suicide(i):
    if i == 1:
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)  # a genuine worker death
    return i


class TestWorkerFailureModes:
    """SweepWorkerError: typed worker deaths, and continue-past-failures."""

    def _tasks(self, fn, n=4):
        return [SweepTask(name=f"t{i}", fn=fn, args=(i,)) for i in range(n)]

    def test_pool_crash_raises_typed_error_naming_the_task(self):
        with pytest.raises(SweepWorkerError) as err:
            SweepExecutor(2).map(self._tasks(_suicide))
        assert err.value.task_name == "t1"
        assert err.value.index == 1
        assert err.value.crashed
        assert "t1" in str(err.value)

    def test_ordinary_exception_still_propagates_unchanged(self):
        # the historical contract: a task raising is NOT wrapped on the
        # default raise path (CLI error hygiene catches the raw type)
        for jobs in (1, 3):
            with pytest.raises(RuntimeError, match="task 2 exploded") as err:
                SweepExecutor(jobs).map(self._tasks(_boom))
            assert not isinstance(err.value, SweepWorkerError)

    def test_continue_inline_yields_failures_in_place(self):
        results = SweepExecutor(1).map(self._tasks(_boom), on_error="continue")
        assert results[0] == 0 and results[1] == 1 and results[3] == 3
        failure = results[2]
        assert isinstance(failure, SweepWorkerError)
        assert failure.task_name == "t2" and not failure.crashed
        assert isinstance(failure.cause, RuntimeError)

    def test_continue_survives_a_pool_crash(self):
        # task 1 kills its worker; the pool is rebuilt and the remaining
        # tasks still produce results, in order
        results = SweepExecutor(2).map(self._tasks(_suicide, n=5), on_error="continue")
        assert isinstance(results[1], SweepWorkerError) and results[1].crashed
        clean = [r for r in results if not isinstance(r, SweepWorkerError)]
        # tasks in flight when the pool broke may be re-run (at-least-
        # once past a crash), but every surviving position reports its
        # own value in order
        assert clean == [i for i in range(5) if i != 1]

    def test_on_error_argument_validated(self):
        with pytest.raises(ValueError, match="on_error"):
            SweepExecutor(1).map([], on_error="ignore")
