"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_clamr_defaults(self):
        args = build_parser().parse_args(["clamr"])
        assert args.nx == 32 and args.policy == "full" and args.scheme == "rusanov"

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["clamr", "--policy", "quad"])

    def test_table_number_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "8"])
        assert build_parser().parse_args(["table", "7"]).number == 7

    def test_figure_number_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "6"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "clamr"])
        assert args.nx == 64 and args.steps == 100 and args.stride == 4
        assert not args.strict
        assert args.strict_headroom_bits == 2.0

    def test_trace_strict_headroom_flag(self):
        args = build_parser().parse_args(
            ["trace", "clamr", "--strict", "--strict-headroom-bits", "8"]
        )
        assert args.strict and args.strict_headroom_bits == 8.0

    def test_ledger_record_defaults(self):
        args = build_parser().parse_args(
            ["ledger", "record", "clamr", "--ledger", "runs"]
        )
        assert args.runs == 1 and args.nx == 24 and args.steps == 40
        assert args.policy == "mixed" and args.seed == 0

    def test_ledger_gate_defaults(self):
        args = build_parser().parse_args(
            ["ledger", "gate", "--ledger", "a", "--baseline", "b"]
        )
        assert args.rel_floor == 0.10 and args.mad_z == 5.0
        assert args.min_kernel_ms == 1.0 and not args.require_baseline

    def test_trace_workload_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "lulesh"])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GTX TITAN X" in out and "32" in out

    def test_clamr_run(self, capsys):
        assert main(["clamr", "--nx", "8", "--steps", "5", "--max-level", "1"]) == 0
        out = capsys.readouterr().out
        assert "mass drift" in out

    def test_clamr_muscl_scalar_conflict(self, capsys):
        # user errors exit 2 with a one-line message, never a traceback
        assert main(["clamr", "--nx", "8", "--steps", "2", "--scheme", "muscl", "--scalar"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_clamr_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "ck.clmr"
        assert main(["clamr", "--nx", "8", "--steps", "2", "--max-level", "0",
                     "--checkpoint", str(path)]) == 0
        assert path.exists()
        assert "checkpoint" in capsys.readouterr().out

    def test_self_run(self, capsys):
        assert main(["self", "--elems", "2", "--order", "2", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "anomaly scale" in out

    def test_compare(self, capsys):
        assert main(["compare", "--nx", "16", "--steps", "20"]) == 0
        out = capsys.readouterr().out
        assert "orders below soln" in out

    def test_compare_bad_levels(self, capsys):
        assert main(["compare", "--nx", "16", "--steps", "5", "--levels", "min"]) == 2

    def test_table4(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "GNU" in out and "Intel" in out

    def test_figure5(self, capsys):
        assert main(["figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "asymmetry" in out.lower()

    def test_trace_clamr(self, tmp_path, capsys):
        trace = tmp_path / "t.trace.json"
        jsonl = tmp_path / "t.jsonl"
        assert main(["trace", "clamr", "--nx", "16", "--steps", "10",
                     "--max-level", "1", "--out", str(trace),
                     "--jsonl", str(jsonl), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "clamr/compute_timestep" in out
        assert "Span summary" in out
        assert "numerical events" in out
        import json

        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert len(names) >= 4
        assert jsonl.exists()

    def test_trace_self(self, capsys):
        assert main(["trace", "self", "--elems", "2", "--order", "2",
                     "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "self/rhs" in out

    def test_clamr_ledger_flag(self, tmp_path, capsys):
        from repro.ledger import Ledger

        assert main(["clamr", "--nx", "8", "--steps", "5", "--max-level", "1",
                     "--ledger", str(tmp_path / "obs")]) == 0
        assert "ledger" in capsys.readouterr().out
        assert len(Ledger(tmp_path / "obs")) == 1

    def test_self_ledger_flag(self, tmp_path):
        from repro.ledger import Ledger

        assert main(["self", "--elems", "2", "--order", "2", "--steps", "3",
                     "--ledger", str(tmp_path / "obs")]) == 0
        record = Ledger(tmp_path / "obs").records()[0]
        assert record.workload == "self"


class TestResilienceCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["resilience", "run", "clamr"])
        assert args.checkpoint_interval == 8 and args.max_rollbacks == 12
        assert args.ladder == "retry,halve_dt,escalate,escalate"
        assert args.policy == "min"

    def test_run_recovers_and_ledgers(self, tmp_path, capsys):
        from repro.ledger import Ledger

        ledger = tmp_path / "res.jsonl"
        assert main(["resilience", "run", "clamr", "--nx", "12", "--steps", "16",
                     "--policy", "min", "--fault", "nan:H:8",
                     "--ladder", "escalate,escalate",
                     "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "min -> mixed" in out and "1 recovery(ies)" in out
        [record] = Ledger(ledger).records()
        assert record.fidelity["faults_injected"] == 1
        assert record.fidelity["recoveries"] >= 1
        assert record.fidelity["aborted"] == 0
        assert record.config["resilience"]["plan"]["specs"][0]["kind"] == "nan"

    def test_run_abort_exits_1(self, capsys):
        assert main(["resilience", "run", "clamr", "--nx", "12", "--steps", "16",
                     "--fault", "nan!:H:8", "--ladder", "retry",
                     "--max-rollbacks", "2"]) == 1
        assert "ABORTED" in capsys.readouterr().out

    def test_inject_probe(self, capsys):
        assert main(["resilience", "inject", "clamr", "--nx", "12", "--steps", "10",
                     "--fault", "nan:H:5"]) == 0
        out = capsys.readouterr().out
        assert "0 rollback(s)" in out and "detection" in out

    def test_campaign(self, capsys):
        assert main(["resilience", "campaign", "clamr", "--arrays", "H",
                     "--kinds", "nan", "--levels", "min", "--steps", "10",
                     "--nx", "12"]) == 0
        out = capsys.readouterr().out
        assert "Vulnerability report" in out


class TestErrorHygiene:
    """User errors exit 2 with a one-line message, no traceback."""

    def _expect_error(self, capsys, argv):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:") and "Traceback" not in err

    def test_bad_fault_spec(self, capsys):
        self._expect_error(capsys, ["resilience", "run", "clamr", "--fault", "garbage"])

    def test_fault_unknown_array(self, capsys):
        self._expect_error(capsys, ["resilience", "run", "clamr", "--fault", "nan:Q:5"])

    def test_fault_beyond_run(self, capsys):
        self._expect_error(
            capsys, ["resilience", "run", "clamr", "--steps", "4", "--fault", "nan:H:99"])

    def test_bad_ladder_action(self, capsys):
        self._expect_error(
            capsys, ["resilience", "run", "clamr", "--ladder", "retry,reboot"])

    def test_missing_ledger_report(self, tmp_path, capsys):
        self._expect_error(
            capsys, ["ledger", "report", "--ledger", str(tmp_path / "nope.jsonl")])

    def test_missing_gate_baseline(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        ledger.write_text("")
        self._expect_error(
            capsys, ["ledger", "gate", "--ledger", str(ledger),
                     "--baseline", str(tmp_path / "nope.jsonl")])

    def test_missing_export_bench_ledger(self, tmp_path, capsys):
        self._expect_error(
            capsys, ["ledger", "export-bench", "--ledger", str(tmp_path / "nope")])


class TestStrictTrace:
    """``trace --strict`` fails on fatal events and on exhausted headroom."""

    def test_healthy_run_passes_strict(self):
        assert main(["trace", "clamr", "--nx", "12", "--steps", "8",
                     "--max-level", "1", "--strict",
                     "--strict-headroom-bits", "4"]) == 0

    def test_fatal_events_detected(self):
        import numpy as np

        from repro.cli import _strict_failures
        from repro.telemetry import Telemetry

        tel = Telemetry(watch_stride=1)
        tel.scan("H", np.array([1.0, np.nan]))
        fatal, exhausted = _strict_failures(tel, 2.0)
        assert len(fatal) == 1 and not exhausted

    def test_headroom_exhaustion_detected(self):
        import numpy as np

        from repro.cli import _strict_failures
        from repro.telemetry import Telemetry

        tel = Telemetry(watch_stride=1)
        # ~0.5 decades (~1.7 bits) below float32 max: an overflow_risk
        # watchpoint event with headroom under the 2-bit default
        tel.scan("H", np.array([1.0e38], dtype=np.float32))
        events = [e for e in tel.numerics.events if e.kind == "overflow_risk"]
        assert events, "scan should have recorded an overflow_risk event"
        fatal, exhausted = _strict_failures(tel, 2.0)
        assert not fatal and len(exhausted) == 1
        # a tighter threshold tolerates the same event
        _, ok = _strict_failures(tel, 0.5)
        assert not ok
