"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_clamr_defaults(self):
        args = build_parser().parse_args(["clamr"])
        assert args.nx == 32 and args.policy == "full" and args.scheme == "rusanov"

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["clamr", "--policy", "quad"])

    def test_table_number_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "8"])
        assert build_parser().parse_args(["table", "7"]).number == 7

    def test_figure_number_range(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "6"])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "clamr"])
        assert args.nx == 64 and args.steps == 100 and args.stride == 4
        assert not args.strict

    def test_trace_workload_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "lulesh"])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GTX TITAN X" in out and "32" in out

    def test_clamr_run(self, capsys):
        assert main(["clamr", "--nx", "8", "--steps", "5", "--max-level", "1"]) == 0
        out = capsys.readouterr().out
        assert "mass drift" in out

    def test_clamr_muscl_scalar_conflict(self):
        with pytest.raises(ValueError):
            main(["clamr", "--nx", "8", "--steps", "2", "--scheme", "muscl", "--scalar"])

    def test_clamr_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "ck.clmr"
        assert main(["clamr", "--nx", "8", "--steps", "2", "--max-level", "0",
                     "--checkpoint", str(path)]) == 0
        assert path.exists()
        assert "checkpoint" in capsys.readouterr().out

    def test_self_run(self, capsys):
        assert main(["self", "--elems", "2", "--order", "2", "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "anomaly scale" in out

    def test_compare(self, capsys):
        assert main(["compare", "--nx", "16", "--steps", "20"]) == 0
        out = capsys.readouterr().out
        assert "orders below soln" in out

    def test_compare_bad_levels(self, capsys):
        assert main(["compare", "--nx", "16", "--steps", "5", "--levels", "min"]) == 2

    def test_table4(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "GNU" in out and "Intel" in out

    def test_figure5(self, capsys):
        assert main(["figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "asymmetry" in out.lower()

    def test_trace_clamr(self, tmp_path, capsys):
        trace = tmp_path / "t.trace.json"
        jsonl = tmp_path / "t.jsonl"
        assert main(["trace", "clamr", "--nx", "16", "--steps", "10",
                     "--max-level", "1", "--out", str(trace),
                     "--jsonl", str(jsonl), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "clamr/compute_timestep" in out
        assert "Span summary" in out
        assert "numerical events" in out
        import json

        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert len(names) >= 4
        assert jsonl.exists()

    def test_trace_self(self, capsys):
        assert main(["trace", "self", "--elems", "2", "--order", "2",
                     "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "self/rhs" in out
