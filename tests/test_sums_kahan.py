"""Unit + property tests for compensated summation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sums import kahan_sum, naive_sum, neumaier_sum


def exact_sum(values) -> float:
    return math.fsum(float(v) for v in np.asarray(values, dtype=np.float64).ravel())


class TestNaive:
    def test_simple(self):
        assert naive_sum(np.array([1.0, 2.0, 3.0])) == 6.0

    def test_empty(self):
        assert naive_sum(np.array([])) == 0.0

    def test_left_to_right_order(self):
        # 1 + 1e16 - 1e16 in float64: the 1 is absorbed
        assert naive_sum(np.array([1.0, 1e16, -1e16])) == 0.0
        # but fully cancelling first keeps it
        assert naive_sum(np.array([1e16, -1e16, 1.0])) == 1.0

    def test_integer_input_promoted(self):
        assert naive_sum(np.array([1, 2, 3])) == 6.0

    def test_float32_dtype_respected(self):
        # float32 cannot hold 16777216 + 1
        x = np.array([16777216.0, 1.0], dtype=np.float32)
        assert naive_sum(x) == 16777216.0
        assert naive_sum(x, dtype=np.float64) == 16777217.0


class TestKahan:
    def test_recovers_absorbed_small_terms(self):
        x = np.array([1e16] + [1.0] * 1000)
        assert kahan_sum(x) == pytest.approx(exact_sum(x), abs=2.0)
        # naive loses all 1000 ones
        assert naive_sum(x) == 1e16

    def test_float32_accumulation_beats_naive(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(0.0, 1.0, size=20000).astype(np.float32)
        exact = exact_sum(x)
        assert abs(kahan_sum(x) - exact) < abs(naive_sum(x) - exact)

    @given(st.lists(st.floats(-1e8, 1e8), min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_error_bound(self, values):
        x = np.array(values, dtype=np.float64)
        eps = np.finfo(np.float64).eps
        bound = 2 * eps * float(np.sum(np.abs(x))) + 1e-300
        assert abs(kahan_sum(x) - exact_sum(x)) <= bound


class TestNeumaier:
    def test_handles_large_term_after_small_sum(self):
        # the classic case where plain Kahan fails
        x = np.array([1.0, 1e100, 1.0, -1e100])
        assert neumaier_sum(x) == 2.0

    def test_matches_exact_on_random(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=5000) * 10.0 ** rng.integers(-8, 8, size=5000)
        assert neumaier_sum(x) == pytest.approx(exact_sum(x), rel=1e-15, abs=1e-300)

    @given(st.lists(st.floats(-1e50, 1e50), min_size=0, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_never_worse_than_naive(self, values):
        x = np.array(values, dtype=np.float64)
        exact = exact_sum(x)
        err_n = abs(neumaier_sum(x) - exact)
        err_0 = abs(naive_sum(x) - exact)
        assert err_n <= err_0 + 1e-300 or err_n < abs(exact) * 1e-15 + 1e-300
