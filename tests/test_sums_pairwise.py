"""Unit + property tests for pairwise (tree) summation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sums import naive_sum, pairwise_sum


class TestPairwise:
    def test_simple(self):
        assert pairwise_sum(np.arange(10.0)) == 45.0

    def test_empty_and_singleton(self):
        assert pairwise_sum(np.array([])) == 0.0
        assert pairwise_sum(np.array([3.5])) == 3.5

    def test_odd_lengths(self):
        for n in (3, 5, 7, 17, 33):
            x = np.arange(float(n))
            assert pairwise_sum(x) == float(n * (n - 1) // 2)

    def test_float32_error_beats_naive(self):
        rng = np.random.default_rng(11)
        x = rng.uniform(0.0, 1.0, size=2**16).astype(np.float32)
        exact = math.fsum(x.astype(np.float64).tolist())
        assert abs(pairwise_sum(x) - exact) <= abs(naive_sum(x) - exact)

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1001)
        assert pairwise_sum(x) == pairwise_sum(x.copy())

    def test_dtype_override(self):
        x = np.array([16777216.0, 1.0], dtype=np.float32)
        assert pairwise_sum(x, dtype=np.float64) == 16777217.0

    def test_input_not_mutated(self):
        x = np.arange(8.0)
        before = x.copy()
        pairwise_sum(x)
        np.testing.assert_array_equal(x, before)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_close_to_exact(self, values):
        x = np.array(values, dtype=np.float64)
        exact = math.fsum(values)
        # pairwise error ~ log2(n) eps Σ|x|
        n = max(2, x.size)
        bound = np.log2(n) * np.finfo(np.float64).eps * float(np.sum(np.abs(x))) + 1e-300
        assert abs(pairwise_sum(x) - exact) <= bound

    @given(st.integers(2, 1024))
    @settings(max_examples=50, deadline=None)
    def test_ones_exact(self, n):
        assert pairwise_sum(np.ones(n)) == float(n)
