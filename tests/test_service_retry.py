"""Retry policy: capped backoff, deterministic jitter, ladder walking."""

import pytest

from repro.service.retry import RetryPolicy, walk_ladder


class TestRetryPolicy:
    def test_exponential_growth_until_cap(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0, max_delay_s=5.0, jitter_frac=0.0)
        assert policy.delay_s(1) == 1.0
        assert policy.delay_s(2) == 2.0
        assert policy.delay_s(3) == 4.0
        assert policy.delay_s(4) == 5.0  # capped
        assert policy.delay_s(10) == 5.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, max_delay_s=1.0, jitter_frac=0.25)
        a1 = policy.delay_s(1, key="job-a")
        assert a1 == policy.delay_s(1, key="job-a")  # replayable
        assert 0.75 <= a1 <= 1.0  # shaves off, never exceeds the cap
        # different keys / attempts spread out
        assert len({policy.delay_s(1, key=f"job-{i}") for i in range(8)}) > 1
        assert policy.delay_s(2, key="job-a") != a1

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(0)

    def test_exhausted_counts_failures(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(7)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=1.0)

    def test_config_round_trip(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.5, jitter_frac=0.1)
        assert RetryPolicy.from_config(policy.to_config()) == policy


class TestWalkLadder:
    def test_takes_first_applicable_rung(self):
        taken = []

        def apply(action):
            taken.append(action)
            return action == "halve_dt"

        applied, idx = walk_ladder(["retry", "halve_dt", "escalate"], 0, apply)
        assert applied and idx == 2
        assert taken == ["retry", "halve_dt"]  # escalate never consulted

    def test_resumes_from_index(self):
        applied, idx = walk_ladder(["a", "b", "c"], 1, lambda action: action == "c")
        assert applied and idx == 3

    def test_exhaustion_reports_give_up(self):
        applied, idx = walk_ladder(["a", "b"], 0, lambda action: False)
        assert not applied and idx == 2
        # and an exhausted ladder stays exhausted
        assert walk_ladder(["a", "b"], idx, lambda action: True) == (False, 2)
