"""Unit tests for the greedy precision tuner."""

import pytest

from repro.precision.policy import PrecisionLevel
from repro.precision.tuner import ArrayBinding, GreedyPrecisionTuner


def make_run(errors):
    """A run function mapping frozen assignments to canned errors.

    ``errors`` maps frozensets of (name, level-value) pairs to error
    values; anything not listed gets the default.
    """

    calls = []

    def run(assignment):
        calls.append(dict(assignment))
        key = frozenset((k, v.value) for k, v in assignment.items())
        return errors.get(key, errors.get("default", 0.0))

    run.calls = calls
    return run


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            GreedyPrecisionTuner(
                [ArrayBinding("a"), ArrayBinding("a")], lambda a: 0.0, error_bound=1.0
            )

    def test_unsorted_levels_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            ArrayBinding("a", levels=(PrecisionLevel.FULL, PrecisionLevel.MIN))

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError, match="candidate levels"):
            ArrayBinding("a", levels=())

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            ArrayBinding("a", weight=0.0)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            GreedyPrecisionTuner([ArrayBinding("a")], lambda a: 0.0, error_bound=-1.0)

    def test_baseline_violation_raises(self):
        tuner = GreedyPrecisionTuner([ArrayBinding("a")], lambda a: 99.0, error_bound=1.0)
        with pytest.raises(RuntimeError, match="baseline"):
            tuner.tune()


class TestSearch:
    def test_everything_demotable(self):
        run = make_run({"default": 0.0})
        tuner = GreedyPrecisionTuner(
            [ArrayBinding("a"), ArrayBinding("b")], run, error_bound=1.0
        )
        result = tuner.tune()
        assert all(level is PrecisionLevel.MIN for level in result.assignment.values())
        assert result.savings_fraction == pytest.approx(0.5)  # 8 bytes -> 4

    def test_nothing_demotable(self):
        def run(assignment):
            if any(level is not PrecisionLevel.FULL for level in assignment.values()):
                return 10.0
            return 0.0

        tuner = GreedyPrecisionTuner([ArrayBinding("a"), ArrayBinding("b")], run, error_bound=1.0)
        result = tuner.tune()
        assert all(level is PrecisionLevel.FULL for level in result.assignment.values())
        assert result.savings_fraction == 0.0
        # failed demotions appear in the trace, marked not kept
        assert any(not kept for *_rest, kept in result.trace)

    def test_one_sensitive_binding(self):
        def run(assignment):
            return 5.0 if assignment["sensitive"] is not PrecisionLevel.FULL else 0.0

        tuner = GreedyPrecisionTuner(
            [ArrayBinding("sensitive"), ArrayBinding("bulk", weight=100.0)],
            run,
            error_bound=1.0,
        )
        result = tuner.tune()
        assert result.assignment["sensitive"] is PrecisionLevel.FULL
        assert result.assignment["bulk"] is PrecisionLevel.MIN

    def test_heavier_binding_demoted_first(self):
        run = make_run({"default": 0.0})
        tuner = GreedyPrecisionTuner(
            [ArrayBinding("small", weight=1.0), ArrayBinding("big", weight=50.0)],
            run,
            error_bound=1.0,
            max_evaluations=3,  # baseline + 2 attempts
        )
        result = tuner.tune()
        # with only two attempts after baseline, the big one went first
        first_attempt = result.trace[0]
        assert first_attempt[0] == "big"

    def test_evaluation_cap_respected(self):
        run = make_run({"default": 0.0})
        tuner = GreedyPrecisionTuner(
            [ArrayBinding(f"b{i}") for i in range(10)], run, error_bound=1.0, max_evaluations=4
        )
        result = tuner.tune()
        assert result.evaluations <= 4

    def test_deterministic(self):
        def run(assignment):
            return 0.1 * sum(l is PrecisionLevel.MIN for l in assignment.values())

        def tune_once():
            return GreedyPrecisionTuner(
                [ArrayBinding("a"), ArrayBinding("b"), ArrayBinding("c")],
                run,
                error_bound=0.25,
            ).tune()

        r1, r2 = tune_once(), tune_once()
        assert r1.assignment == r2.assignment
        assert r1.evaluations == r2.evaluations

    def test_error_reported_is_final_assignment_error(self):
        def run(assignment):
            return 0.2 if assignment["a"] is PrecisionLevel.MIN else 0.0

        tuner = GreedyPrecisionTuner([ArrayBinding("a")], run, error_bound=1.0)
        result = tuner.tune()
        assert result.assignment["a"] is PrecisionLevel.MIN
        assert result.error == pytest.approx(0.2)

    def test_multi_step_demotion_full_to_min(self):
        # greedy must walk FULL -> MIXED -> MIN in two kept steps
        run = make_run({"default": 0.0})
        tuner = GreedyPrecisionTuner([ArrayBinding("a")], run, error_bound=1.0)
        result = tuner.tune()
        assert result.assignment["a"] is PrecisionLevel.MIN
        kept = [t for t in result.trace if t[4]]
        assert len(kept) == 2

    def test_nan_error_treated_as_violation(self):
        def run(assignment):
            return float("nan") if assignment["a"] is not PrecisionLevel.FULL else 0.0

        tuner = GreedyPrecisionTuner([ArrayBinding("a")], run, error_bound=1.0)
        result = tuner.tune()
        assert result.assignment["a"] is PrecisionLevel.FULL
