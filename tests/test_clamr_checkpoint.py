"""Unit tests for checkpoint I/O and the Table III size ratio."""

import numpy as np
import pytest

from repro.clamr.checkpoint import checkpoint_nbytes, read_checkpoint, write_checkpoint
from repro.clamr.mesh import AmrMesh
from repro.clamr.state import ShallowWaterState
from repro.precision.policy import FULL_PRECISION, HALF_PRECISION, MIN_PRECISION, MIXED_PRECISION


def small_setup(policy):
    mesh = AmrMesh.uniform(4, 4, max_level=1)
    rng = np.random.default_rng(0)
    state = ShallowWaterState(
        H=1.0 + rng.random(16),
        U=rng.normal(size=16),
        V=rng.normal(size=16),
        policy=policy,
    )
    return mesh, state


class TestSizes:
    def test_predicted_size_formula(self):
        # per cell: 3 int32 + 3 state floats; 72-byte v2 header
        assert checkpoint_nbytes(100, FULL_PRECISION) == 72 + 100 * (12 + 24)
        assert checkpoint_nbytes(100, MIN_PRECISION) == 72 + 100 * (12 + 12)

    def test_two_thirds_ratio_at_scale(self):
        """The paper's 86M/128M checkpoint ratio is exactly the layout ratio."""
        n = 3_700_000
        full = checkpoint_nbytes(n, FULL_PRECISION)
        minimum = checkpoint_nbytes(n, MIN_PRECISION)
        assert minimum / full == pytest.approx(2 / 3, rel=1e-4)

    def test_mixed_same_as_min(self):
        assert checkpoint_nbytes(1000, MIXED_PRECISION) == checkpoint_nbytes(1000, MIN_PRECISION)

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            checkpoint_nbytes(-1, FULL_PRECISION)

    def test_written_file_matches_prediction(self, tmp_path):
        for policy in (MIN_PRECISION, MIXED_PRECISION, FULL_PRECISION):
            mesh, state = small_setup(policy)
            path = tmp_path / f"{policy.level.value}.clmr"
            size = write_checkpoint(path, mesh, state)
            assert size == checkpoint_nbytes(mesh.ncells, policy)


class TestRoundtrip:
    @pytest.mark.parametrize("policy", [MIN_PRECISION, FULL_PRECISION])
    def test_roundtrip_bitwise(self, tmp_path, policy):
        mesh, state = small_setup(policy)
        path = tmp_path / "ck.clmr"
        write_checkpoint(path, mesh, state)
        mesh2, state2 = read_checkpoint(path)
        assert mesh2.ncells == mesh.ncells
        np.testing.assert_array_equal(mesh2.i, mesh.i)
        np.testing.assert_array_equal(mesh2.level, mesh.level)
        np.testing.assert_array_equal(state2.H, state.H)
        np.testing.assert_array_equal(state2.V, state.V)
        assert state2.state_dtype == state.state_dtype

    def test_mixed_reads_back_as_min(self, tmp_path):
        # the file stores dtype, not policy; float32 state reads as MIN
        mesh, state = small_setup(MIXED_PRECISION)
        path = tmp_path / "ck.clmr"
        write_checkpoint(path, mesh, state)
        _, state2 = read_checkpoint(path)
        assert state2.policy.level.value == "min"
        restored = state2.with_policy(MIXED_PRECISION)
        assert restored.compute_dtype == np.float64


class TestValidation:
    def test_half_precision_not_supported(self, tmp_path):
        mesh, _ = small_setup(FULL_PRECISION)
        state = ShallowWaterState.zeros(mesh.ncells, HALF_PRECISION)
        with pytest.raises(ValueError, match="float32/float64"):
            write_checkpoint(tmp_path / "x.clmr", mesh, state)

    def test_cell_count_mismatch(self, tmp_path):
        mesh, _ = small_setup(FULL_PRECISION)
        state = ShallowWaterState.zeros(5, FULL_PRECISION)
        with pytest.raises(ValueError, match="differ"):
            write_checkpoint(tmp_path / "x.clmr", mesh, state)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.clmr"
        path.write_bytes(b"NOPE" + b"\x00" * 60)
        with pytest.raises(ValueError, match="magic"):
            read_checkpoint(path)

    def test_truncated_file(self, tmp_path):
        mesh, state = small_setup(FULL_PRECISION)
        path = tmp_path / "t.clmr"
        write_checkpoint(path, mesh, state)
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(ValueError, match="size"):
            read_checkpoint(path)

    def test_too_short_for_header(self, tmp_path):
        path = tmp_path / "s.clmr"
        path.write_bytes(b"CL")
        with pytest.raises(ValueError, match="short"):
            read_checkpoint(path)


class TestContentHash:
    """v2 headers carry a payload sha256 verified on every load."""

    def test_payload_corruption_detected(self, tmp_path):
        mesh, state = small_setup(FULL_PRECISION)
        path = tmp_path / "ck.clmr"
        write_checkpoint(path, mesh, state)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01  # single bit flip in the last payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="content hash"):
            read_checkpoint(path)

    def test_header_tamper_detected_as_size_or_hash_error(self, tmp_path):
        mesh, state = small_setup(MIN_PRECISION)
        path = tmp_path / "ck.clmr"
        write_checkpoint(path, mesh, state)
        raw = bytearray(path.read_bytes())
        raw[40] ^= 0x01  # flip a bit inside the stored digest
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="content hash"):
            read_checkpoint(path)


class TestAtomicity:
    """A failed write never tears an existing checkpoint."""

    def test_interrupted_write_leaves_old_file_intact(self, tmp_path, monkeypatch):
        import os

        mesh, state = small_setup(FULL_PRECISION)
        path = tmp_path / "ck.clmr"
        write_checkpoint(path, mesh, state)
        good = path.read_bytes()

        def boom(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", boom)
        state.H[:] = 2.0
        with pytest.raises(OSError):
            write_checkpoint(path, mesh, state)
        assert path.read_bytes() == good
        # and no temp litter is left behind
        assert [p.name for p in tmp_path.iterdir()] == ["ck.clmr"]

    def test_write_goes_through_temp_then_rename(self, tmp_path, monkeypatch):
        import repro.ioutil as ioutil

        seen = {}
        real_replace = ioutil.os.replace

        def spying_replace(src, dst):
            seen["src"], seen["dst"] = str(src), str(dst)
            return real_replace(src, dst)

        monkeypatch.setattr(ioutil.os, "replace", spying_replace)
        mesh, state = small_setup(MIN_PRECISION)
        path = tmp_path / "ck.clmr"
        write_checkpoint(path, mesh, state)
        assert seen["dst"] == str(path) and ".tmp-" in seen["src"]
        read_checkpoint(path)  # still a valid file
