"""Unit + property tests for the nodal basis operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.self_.basis import (
    NodalBasis,
    barycentric_weights,
    derivative_matrix,
    lagrange_interpolation_matrix,
)
from repro.self_.quadrature import gauss_lobatto


class TestBarycentric:
    def test_two_points(self):
        w = barycentric_weights(np.array([-1.0, 1.0]))
        np.testing.assert_allclose(w, [-0.5, 0.5])

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            barycentric_weights(np.array([0.0]))

    def test_equispaced_alternating_signs(self):
        w = barycentric_weights(np.linspace(-1, 1, 5))
        assert (np.sign(w) == [1, -1, 1, -1, 1]).all() or (np.sign(w) == [-1, 1, -1, 1, -1]).all()


class TestDerivativeMatrix:
    @given(st.integers(2, 10), st.integers(0, 9))
    @settings(max_examples=100, deadline=None)
    def test_differentiates_monomials_exactly(self, npts, degree):
        if degree >= npts:
            return
        x, _ = gauss_lobatto(npts)
        D = derivative_matrix(x)
        f = x**degree
        df = D @ f
        expected = degree * x ** max(0, degree - 1) if degree > 0 else np.zeros_like(x)
        np.testing.assert_allclose(df, expected, atol=1e-10 * max(1, degree**2))

    def test_constant_derivative_is_exactly_zero(self):
        x, _ = gauss_lobatto(6)
        D = derivative_matrix(x)
        np.testing.assert_allclose(D @ np.ones(6), 0.0, atol=1e-13)

    def test_negative_sum_trick_rows(self):
        x, _ = gauss_lobatto(8)
        D = derivative_matrix(x)
        np.testing.assert_allclose(D.sum(axis=1), 0.0, atol=1e-13)


class TestInterpolation:
    def test_exact_at_nodes(self):
        x, _ = gauss_lobatto(5)
        M = lagrange_interpolation_matrix(x, x)
        np.testing.assert_allclose(M, np.eye(5), atol=1e-13)

    def test_interpolates_polynomials(self):
        x, _ = gauss_lobatto(6)
        t = np.linspace(-1, 1, 17)
        M = lagrange_interpolation_matrix(x, t)
        f = 3 * x**4 - x**2 + 0.5
        ft = 3 * t**4 - t**2 + 0.5
        np.testing.assert_allclose(M @ f, ft, atol=1e-12)

    def test_partition_of_unity(self):
        x, _ = gauss_lobatto(7)
        t = np.linspace(-1, 1, 23)
        M = lagrange_interpolation_matrix(x, t)
        np.testing.assert_allclose(M.sum(axis=1), 1.0, atol=1e-12)


class TestNodalBasis:
    def test_cached(self):
        assert NodalBasis.gll(4) is NodalBasis.gll(4)

    def test_npoints(self):
        assert NodalBasis.gll(7).npoints == 8

    def test_modal_roundtrip(self):
        b = NodalBasis.gll(6)
        rng = np.random.default_rng(0)
        nodal = rng.normal(size=7)
        modal = b.Vinv @ nodal
        np.testing.assert_allclose(b.V @ modal, nodal, atol=1e-12)

    def test_vandermonde_orthonormal_columns(self):
        """V^T W V = I for the orthonormalized Legendre Vandermonde,
        up to the GLL quadrature's inexactness in the top mode."""
        b = NodalBasis.gll(5)
        G = b.V.T @ np.diag(b.weights) @ b.V
        off = G - np.eye(6)
        off[-1, -1] = 0.0  # 2N-degree product not integrated exactly by GLL
        np.testing.assert_allclose(off, 0.0, atol=1e-12)

    def test_cast_dtype(self):
        c = NodalBasis.gll(4).cast(np.float32)
        assert c.D.dtype == np.float32
        assert c.npoints == 5

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            NodalBasis.gll(0)
