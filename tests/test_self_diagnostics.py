"""Tests for SELF's global conservation diagnostics."""

import numpy as np
import pytest

from repro.self_ import SelfSimulation, ThermalBubbleConfig
from repro.self_.diagnostics import (
    ConservationTracker,
    anomaly_norms,
    quadrature_weights_3d,
    total_energy,
    total_mass,
    total_momentum,
)

CFG = ThermalBubbleConfig(nex=3, ney=3, nez=3, order=3)


@pytest.fixture(scope="module")
def sim():
    return SelfSimulation(CFG, precision="double")


class TestIntegrals:
    def test_quadrature_weights_integrate_volume(self, sim):
        w3 = quadrature_weights_3d(sim.solver)
        volume = float(w3.sum()) * sim.mesh.nelem
        lx, ly, lz = CFG.lengths
        assert volume == pytest.approx(lx * ly * lz, rel=1e-12)

    def test_mass_of_background(self, sim):
        U = sim.solver.background_state()
        mass = total_mass(sim.solver, U)
        # adiabatic atmosphere: mean density ~1.05 kg/m^3 over the km box
        assert 0.8e9 < mass < 1.3e9

    def test_momentum_of_rest_state_zero(self, sim):
        U = sim.solver.background_state()
        assert total_momentum(sim.solver, U) == (0.0, 0.0, 0.0)

    def test_energy_positive(self, sim):
        U = sim.solver.background_state()
        assert total_energy(sim.solver, U) > 0.0

    def test_anomaly_norms_of_bubble(self, sim):
        l2, linf = anomaly_norms(sim.solver, sim.U)
        assert linf == pytest.approx(float(np.abs(sim.U[:, 0] - sim.solver.rho_bar).max()))
        assert 0.0 < l2
        # the Gaussian bubble's L2 is far below Linf * sqrt(volume)
        assert l2 < linf * np.sqrt(1e9)


class TestConservationOverRun:
    def test_mass_conserved_through_run(self):
        sim = SelfSimulation(CFG, precision="double")
        tracker = ConservationTracker(sim.solver)
        tracker.record(sim.U, sim.time)
        for _ in range(4):
            sim.run(10)
            tracker.record(sim.U, sim.time)
        assert tracker.samples == 5
        assert tracker.mass_drift() < 1e-12

    def test_vertical_momentum_budget(self):
        """Δ(∫ρw) must track the integrated buoyancy source."""
        sim = SelfSimulation(CFG, precision="double")
        tracker = ConservationTracker(sim.solver)
        tracker.record(sim.U, sim.time)
        for _ in range(20):
            sim.run(2)
            tracker.record(sim.U, sim.time)
        # buoyancy dominates; the untracked wall-pressure term leaves a
        # few-percent residual (see diagnostics docstring)
        assert tracker.vertical_momentum_budget_error() < 0.15
        # and the momentum change has the buoyancy sign (bubble rises)
        assert tracker.momentum_z[-1] > 0.0

    def test_single_precision_mass_drift_small_but_nonzero(self):
        sim = SelfSimulation(CFG, precision="single")
        tracker = ConservationTracker(sim.solver)
        tracker.record(sim.U.astype(np.float64) * 1.0, sim.time)  # noqa: record accepts f32 too
        tracker2 = ConservationTracker(sim.solver)
        tracker2.record(sim.U, sim.time)
        sim.run(40)
        tracker2.record(sim.U, sim.time)
        drift = tracker2.mass_drift()
        assert drift < 1e-5  # float32 storage rounding only
        assert np.isfinite(drift)

    def test_empty_tracker_safe(self, sim):
        tracker = ConservationTracker(sim.solver)
        assert tracker.mass_drift() == 0.0
        assert tracker.vertical_momentum_budget_error() == 0.0
