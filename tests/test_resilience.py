"""Tests for the resilience subsystem: faults, detectors, recovery."""

import numpy as np
import pytest

from repro.clamr import DamBreakConfig
from repro.resilience import (
    CampaignConfig,
    ClamrAdapter,
    ConservationDetector,
    DetectorSuite,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InvariantDetector,
    NonFiniteDetector,
    RecoveryPolicy,
    ResilientRunner,
    SelfAdapter,
    make_adapter,
    probe,
    run_campaign,
    run_cell,
    vulnerability_table,
)
from repro.resilience.campaign import record_resilient_run


class TestFaultSpec:
    def test_parse_minimal(self):
        spec = FaultSpec.parse("nan:H:12")
        assert spec.kind == "nan" and spec.array == "H" and spec.step == 12
        assert spec.index is None and spec.bit is None and not spec.sticky

    def test_parse_full(self):
        spec = FaultSpec.parse("bitflip:U:5:17:30")
        assert (spec.kind, spec.array, spec.step, spec.index, spec.bit) == (
            "bitflip", "U", 5, 17, 30)

    def test_parse_sticky(self):
        assert FaultSpec.parse("inf!:V:3").sticky

    @pytest.mark.parametrize("bad", ["nan", "nan:H", "nan:H:x", "warp:H:3", "nan:H:0"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)


class TestFaultInjector:
    def _arrays(self, n=32, dtype=np.float32):
        rng = np.random.default_rng(0)
        return {"H": (1.0 + rng.random(n)).astype(dtype)}

    def test_nan_fault_lands(self):
        arrays = self._arrays()
        plan = FaultPlan(specs=(FaultSpec(kind="nan", array="H", step=3),), seed=1)
        inj = FaultInjector(plan)
        assert inj.apply(2, arrays) == []
        fired = inj.apply(3, arrays)
        assert len(fired) == 1
        assert np.isnan(arrays["H"][fired[0].index])

    def test_transient_fires_once(self):
        arrays = self._arrays()
        plan = FaultPlan(specs=(FaultSpec(kind="inf", array="H", step=2),), seed=1)
        inj = FaultInjector(plan)
        assert len(inj.apply(2, arrays)) == 1
        arrays = self._arrays()  # "rollback"
        assert inj.apply(2, arrays) == []  # replay passes cleanly
        assert not inj.pending()

    def test_sticky_refires(self):
        plan = FaultPlan(specs=(FaultSpec(kind="nan", array="H", step=2, sticky=True),), seed=1)
        inj = FaultInjector(plan)
        for _ in range(3):
            arrays = self._arrays()
            assert len(inj.apply(2, arrays)) == 1
        assert inj.pending()

    def test_bitflip_flips_exactly_one_bit(self):
        arrays = self._arrays()
        before = arrays["H"].copy()
        plan = FaultPlan(specs=(FaultSpec(kind="bitflip", array="H", step=1),), seed=5)
        [fault] = FaultInjector(plan).apply(1, arrays)
        changed = np.flatnonzero(arrays["H"].view(np.uint32) != before.view(np.uint32))
        assert list(changed) == [fault.index]
        delta = int(arrays["H"].view(np.uint32)[fault.index] ^ before.view(np.uint32)[fault.index])
        assert delta == (1 << fault.bit)

    def test_injection_through_noncontiguous_view(self):
        # column views of a 2-D tensor (the SELF adapter's arrays) must
        # receive the injection despite not being contiguous
        U = np.ones((8, 5), dtype=np.float64)
        arrays = {"rho": U[:, 0]}
        plan = FaultPlan(specs=(FaultSpec(kind="nan", array="rho", step=1),), seed=2)
        [fault] = FaultInjector(plan).apply(1, arrays)
        assert np.isnan(U[fault.index, 0])

    def test_overflow_is_finite_but_huge(self):
        arrays = self._arrays()
        plan = FaultPlan(specs=(FaultSpec(kind="overflow", array="H", step=1),), seed=3)
        [fault] = FaultInjector(plan).apply(1, arrays)
        v = arrays["H"][fault.index]
        assert np.isfinite(v) and abs(v) > 0.2 * np.finfo(np.float32).max

    def test_resolution_is_deterministic(self):
        plan = FaultPlan(specs=(FaultSpec(kind="bitflip", array="H", step=4),), seed=9)
        a = FaultInjector(plan).apply(4, self._arrays())[0]
        b = FaultInjector(plan).apply(4, self._arrays())[0]
        assert (a.index, a.bit) == (b.index, b.bit)

    def test_unknown_array_raises(self):
        plan = FaultPlan(specs=(FaultSpec(kind="nan", array="Q", step=1),), seed=0)
        with pytest.raises(KeyError):
            FaultInjector(plan).apply(1, self._arrays())

    def test_generate_is_reproducible(self):
        a = FaultPlan.generate(3, arrays=("H", "U"), steps=(1, 20), count=4)
        b = FaultPlan.generate(3, arrays=("H", "U"), steps=(1, 20), count=4)
        assert a == b
        assert all(1 <= s.step <= 20 and s.array in ("H", "U") for s in a.specs)


class TestDetectors:
    def test_non_finite_detects_nan(self):
        det = NonFiniteDetector()
        arrays = {"H": np.array([1.0, np.nan], dtype=np.float32)}
        found = det.check(arrays, step=1, state_dtype=np.float32)
        assert any(d.detector == "non_finite" for d in found)

    def test_non_finite_detects_overflow_headroom(self):
        det = NonFiniteDetector(fail_on_overflow_risk=True)
        arrays = {"H": np.array([0.25 * np.finfo(np.float32).max], dtype=np.float32)}
        assert det.check(arrays, step=1, state_dtype=np.float32)
        relaxed = NonFiniteDetector(fail_on_overflow_risk=False)
        assert not relaxed.check(arrays, step=1, state_dtype=np.float32)

    def test_clean_arrays_pass(self):
        det = NonFiniteDetector()
        arrays = {"H": np.linspace(0.5, 2.0, 64, dtype=np.float32)}
        assert det.check(arrays, step=1, state_dtype=np.float32) == []

    def test_conservation_bound(self):
        det = ConservationDetector(rel_bound=1e-4)
        det.set_reference(100.0)
        assert det.check_total(100.0 + 1e-3, step=2) == []
        assert det.check_total(101.0, step=2)
        assert det.check_total(float("nan"), step=2)

    def test_invariant_bounds(self):
        det = InvariantDetector({"H": (0.0, None)})
        assert det.check({"H": np.array([0.5, 1.0])}, step=1) == []
        found = det.check({"H": np.array([0.5, -2.0])}, step=1)
        assert found and "-2" in found[0].message

    def test_invariant_ignores_nonfinite(self):
        det = InvariantDetector({"H": (0.0, None)})
        assert det.check({"H": np.array([np.nan, np.inf, 1.0])}, step=1) == []


class TestClamrRecovery:
    def _run(self, ladder=("escalate", "escalate"), kind="nan", steps=24,
             policy_kw=None, **spec_kw):
        cfg = DamBreakConfig(nx=16, ny=16, max_level=1)
        adapter = ClamrAdapter(cfg, policy="min")
        plan = FaultPlan(
            specs=(FaultSpec(kind=kind, array="H", step=12, **spec_kw),), seed=7
        )
        policy = RecoveryPolicy(ladder=ladder, **(policy_kw or {}))
        runner = ResilientRunner(adapter, plan=plan, policy=policy)
        return runner.run(steps), runner

    def test_nan_recovery_via_escalation(self):
        report, _ = self._run()
        assert report.completed and not report.aborted
        assert len(report.faults) == 1
        assert report.detected
        assert report.rollbacks >= 1 and report.recoveries >= 1
        assert report.initial_policy == "min" and report.final_policy == "mixed"
        assert report.post_recovery_drift < 1e-4

    def test_nan_recovery_via_retry(self):
        # a transient fault needs only a replay: no escalation
        report, _ = self._run(ladder=("retry",))
        assert report.completed and report.escalations == 0
        assert report.final_policy == "min" and report.recoveries >= 1

    def test_sticky_fault_exhausts_ladder_and_aborts(self):
        report, _ = self._run(ladder=("retry", "retry"), sticky=True)
        assert report.aborted and not report.completed
        assert report.rollbacks >= 2
        # the run stopped at the last good checkpoint, not on garbage
        assert report.steps_completed < report.steps_requested

    def test_rollback_budget_aborts(self):
        # ladder long enough that the rollback budget, not ladder
        # exhaustion, is what stops the run
        report, _ = self._run(ladder=("retry",) * 8, sticky=True,
                              policy_kw={"max_rollbacks": 3})
        assert report.aborted and report.rollbacks == 4

    def test_fault_free_run_is_clean(self):
        cfg = DamBreakConfig(nx=12, ny=12, max_level=1)
        runner = ResilientRunner(ClamrAdapter(cfg, policy="full"))
        report = runner.run(10)
        assert report.completed and not report.detections and not report.faults
        assert report.rollbacks == 0 and report.replayed_steps == 0

    def test_fidelity_counters(self):
        report, _ = self._run()
        fid = report.fidelity()
        assert fid["faults_injected"] == 1
        assert fid["recoveries"] >= 1
        assert fid["aborted"] == 0
        assert fid["final_policy"] == "mixed"

    def test_escalation_survives_rollback(self):
        # two consecutive escalations must compound: min -> mixed -> full
        report, _ = self._run(ladder=("escalate", "escalate"), sticky=True,
                              kind="nan")
        assert report.escalations == 2
        assert report.final_policy == "full"


class TestRecoveryDeterminism:
    def _record(self):
        cfg = DamBreakConfig(nx=16, ny=16, max_level=1)
        adapter = ClamrAdapter(cfg, policy="min")
        plan = FaultPlan(specs=(FaultSpec(kind="bitflip", array="H", step=9),), seed=11)
        runner = ResilientRunner(adapter, plan=plan, policy=RecoveryPolicy())
        report = runner.run(20)
        return record_resilient_run(report, runner, sim_config=cfg, seed=11, label="det")

    def test_same_plan_same_fingerprint(self):
        a, b = self._record(), self._record()
        assert a.fingerprint == b.fingerprint
        assert a.fidelity["conservation_last_hex"] == b.fidelity["conservation_last_hex"]

    def test_plan_enters_run_identity(self):
        cfg = DamBreakConfig(nx=16, ny=16, max_level=1)

        def run(seed):
            adapter = ClamrAdapter(cfg, policy="min")
            plan = FaultPlan(specs=(FaultSpec(kind="bitflip", array="H", step=9),), seed=seed)
            runner = ResilientRunner(adapter, plan=plan)
            report = runner.run(20)
            return record_resilient_run(report, runner, sim_config=cfg, seed=0)

        assert run(1).workload_key != run(2).workload_key


class TestSelfRecovery:
    def test_nan_recovery_via_escalation(self):
        from repro.self_ import ThermalBubbleConfig

        cfg = ThermalBubbleConfig(nex=2, ney=2, nez=2, order=3)
        adapter = SelfAdapter(cfg, precision="single")
        plan = FaultPlan(specs=(FaultSpec(kind="nan", array="rho", step=4),), seed=3)
        runner = ResilientRunner(
            adapter, plan=plan,
            policy=RecoveryPolicy(checkpoint_interval=4, ladder=("escalate",)),
        )
        report = runner.run(8)
        assert report.completed and report.recoveries >= 1
        assert report.initial_policy == "single" and report.final_policy == "double"
        assert adapter.sim.U.dtype == np.float64

    def test_make_adapter(self):
        from repro.self_ import ThermalBubbleConfig

        cfg = ThermalBubbleConfig(nex=2, ney=2, nez=2, order=2)
        assert make_adapter("self", cfg, policy="min").policy_name == "single"
        assert make_adapter("self", cfg, policy="full").policy_name == "double"
        with pytest.raises(ValueError):
            make_adapter("lulesh", cfg)


class TestProbe:
    def test_probe_never_recovers(self):
        cfg = DamBreakConfig(nx=12, ny=12, max_level=1)
        adapter = ClamrAdapter(cfg, policy="min")
        plan = FaultPlan(specs=(FaultSpec(kind="nan", array="H", step=4),), seed=1)
        report = probe(adapter, plan, steps=8)
        assert report.steps_completed == 8
        assert report.detected and report.rollbacks == 0


class TestCampaign:
    def test_cell_is_deterministic(self):
        from dataclasses import replace

        cfg = CampaignConfig(workload="clamr", steps=10, nx=12)
        a, _, _ = run_cell(cfg, "H", "nan", "min")
        b, _, _ = run_cell(cfg, "H", "nan", "min")
        assert replace(a, wall_s=0.0) == replace(b, wall_s=0.0)

    def test_small_sweep_and_table(self, tmp_path):
        from repro.ledger import Ledger

        cfg = CampaignConfig(
            workload="clamr", arrays=("H",), kinds=("nan",),
            levels=("min", "full"), steps=10, nx=12,
        )
        ledger = Ledger(tmp_path / "camp.jsonl")
        result = run_campaign(cfg, ledger=ledger)
        assert len(result.cells) == 2
        assert all(c.detected and c.completed for c in result.cells)
        rendered = vulnerability_table(result).render()
        assert "Vulnerability report" in rendered and "min" in rendered
        assert len(ledger) == 2
        for rec in ledger.records():
            assert rec.fidelity["faults_injected"] == 1
            assert "resilience" in rec.config
